// Regression tests for two divergence-accounting drift bugs:
//
//  1. Harness::Run's weight-refresh deadline was advanced by a fixed
//     `+= interval` per refresh, so with tick_length > weight_refresh_interval
//     it fell unboundedly behind the clock. The deadline now catches up via
//     NextWeightRefreshDeadline (first interval multiple strictly after t).
//
//  2. Link::BeginTick measured a tick's usage as tick_budget - remaining,
//     but a tick that starts in debt (deficit carried over from a large
//     multi-tick transmission) begins *below* budget — the borrowed units
//     were re-reported as used, double-counting them (e.g. budget 10, spend
//     13, then spend 7 recorded 23/20). Usage is now measured against the
//     recorded start-of-tick level, so cumulative used <= capacity.

#include <gtest/gtest.h>

#include "core/harness.h"
#include "exp/experiment.h"
#include "net/link.h"
#include "util/fluctuation.h"

namespace besync {
namespace {

TEST(WeightRefreshDeadlineTest, FirstMultipleStrictlyAfterT) {
  EXPECT_DOUBLE_EQ(NextWeightRefreshDeadline(0.0, 20.0), 20.0);
  EXPECT_DOUBLE_EQ(NextWeightRefreshDeadline(5.0, 2.0), 6.0);
  EXPECT_DOUBLE_EQ(NextWeightRefreshDeadline(4.9, 2.0), 6.0);
  // Landing exactly on a multiple schedules the *next* one (strictly after).
  EXPECT_DOUBLE_EQ(NextWeightRefreshDeadline(6.0, 2.0), 8.0);
}

TEST(WeightRefreshDeadlineTest, KeepsUpWithTicksLongerThanInterval) {
  // Replays Harness::Run's refresh-deadline loop for a coarse-tick run
  // (tick 7, interval 2). The fixed `deadline += interval` of the old code
  // would lag t by ~5 more each tick; the catch-up keeps the deadline
  // within one interval of the clock forever.
  const double tick = 7.0;
  const double interval = 2.0;
  double deadline = interval;
  double drifting_deadline = interval;  // the old `+= interval` rule
  double t = 0.0;
  for (t = tick; t < 700.0; t += tick) {
    if (t >= deadline) deadline = NextWeightRefreshDeadline(t, interval);
    if (t >= drifting_deadline) drifting_deadline += interval;
    EXPECT_GT(deadline, t);
    EXPECT_LE(deadline, t + interval);
  }
  // The old rule gains only `interval` per tick of length `tick`, ending
  // ~(tick - interval) * #ticks behind the clock.
  EXPECT_LT(drifting_deadline, t - 400.0);
}

TEST(WeightRefreshDeadlineTest, SubTickIntervalMatchesTickAlignedInterval) {
  // Weight refreshes happen at tick granularity, so any interval <= tick
  // means "every tick": a sub-tick interval must reproduce the
  // interval == tick_length run exactly.
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCooperative;
  config.workload.num_sources = 4;
  config.workload.objects_per_source = 10;
  config.workload.weight_fluctuation_amplitude = 0.5;
  config.workload.seed = 21;
  config.harness.tick_length = 1.0;
  config.harness.warmup = 20.0;
  config.harness.measure = 120.0;
  config.cache_bandwidth_avg = 6.0;

  config.harness.weight_refresh_interval = 0.25;
  const auto sub_tick = RunExperiment(config);
  ASSERT_TRUE(sub_tick.ok());

  config.harness.weight_refresh_interval = 1.0;
  const auto tick_aligned = RunExperiment(config);
  ASSERT_TRUE(tick_aligned.ok());

  EXPECT_DOUBLE_EQ(sub_tick->total_weighted_divergence,
                   tick_aligned->total_weighted_divergence);
}

Link MakeConstantLink(double bandwidth) {
  return Link("test", std::make_unique<BandwidthModel>(
                          std::make_unique<ConstantFluctuation>(bandwidth)));
}

TEST(LinkUtilizationTest, DeficitCarryoverIsNotDoubleCounted) {
  // Budget 10/tick. Tick 1 starts a cost-13 transmission (3 units of debt);
  // tick 2 starts at 7 remaining and spends it all. Total spend 20 over
  // capacity 20 — the old accounting recorded 13 + 10 = 23.
  Link link = MakeConstantLink(10.0);
  link.BeginTick(0.0, 1.0);
  ASSERT_EQ(link.tick_budget(), 10);
  ASSERT_TRUE(link.TryConsumeAllowingDeficit(13));
  link.BeginTick(1.0, 1.0);
  ASSERT_EQ(link.remaining_budget(), 7);
  ASSERT_TRUE(link.TryConsumeAllowingDeficit(7));
  link.BeginTick(2.0, 1.0);

  EXPECT_DOUBLE_EQ(link.utilization().used(), 20.0);
  EXPECT_DOUBLE_EQ(link.utilization().capacity(), 20.0);
  EXPECT_LE(link.utilization().used(), link.utilization().capacity());
  EXPECT_DOUBLE_EQ(link.utilization().utilization(), 1.0);
}

TEST(LinkUtilizationTest, PartialUseStillMeasuredAgainstBudget) {
  Link link = MakeConstantLink(10.0);
  link.BeginTick(0.0, 1.0);
  EXPECT_EQ(link.ConsumeBudget(4), 4);
  link.BeginTick(1.0, 1.0);
  EXPECT_DOUBLE_EQ(link.utilization().used(), 4.0);
  EXPECT_DOUBLE_EQ(link.utilization().capacity(), 10.0);
}

TEST(LinkUtilizationTest, FinishTickFlushesTheFinalTickOnce) {
  // Without the flush, the deficit tick is recorded (13/10) at the second
  // BeginTick but the payoff tick (7/10) is lost at end of run, leaving
  // cumulative used = 13 > capacity = 10.
  Link link = MakeConstantLink(10.0);
  link.BeginTick(0.0, 1.0);
  ASSERT_TRUE(link.TryConsumeAllowingDeficit(13));
  link.BeginTick(1.0, 1.0);
  ASSERT_TRUE(link.TryConsumeAllowingDeficit(7));
  link.FinishTick();
  link.FinishTick();  // idempotent
  EXPECT_DOUBLE_EQ(link.utilization().used(), 20.0);
  EXPECT_DOUBLE_EQ(link.utilization().capacity(), 20.0);
}

TEST(LinkUtilizationTest, SaturatedNonUniformCostRunStaysWithinCapacity) {
  // End-to-end pin: a saturated run with cost-4 messages keeps the cache
  // link in rolling deficit, which the old accounting inflated past 100%.
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCooperative;
  config.workload.num_sources = 4;
  config.workload.objects_per_source = 10;
  config.workload.cost_scheme = CostScheme::kHalfLarge;
  config.workload.large_cost = 4;
  config.workload.seed = 33;
  config.harness.warmup = 20.0;
  config.harness.measure = 200.0;
  config.cache_bandwidth_avg = 3.0;  // far below the update volume
  const auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->scheduler.cache_utilization, 0.5);
  EXPECT_LE(result->scheduler.cache_utilization, 1.0 + 1e-9);
}

}  // namespace
}  // namespace besync
