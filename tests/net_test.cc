#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "net/bandwidth.h"
#include "net/link.h"
#include "net/network.h"

namespace besync {
namespace {

std::unique_ptr<BandwidthModel> ConstantBandwidth(double rate) {
  return std::make_unique<BandwidthModel>(std::make_unique<ConstantFluctuation>(rate));
}

TEST(BandwidthModelTest, IntegerRateYieldsExactBudget) {
  BandwidthModel model(std::make_unique<ConstantFluctuation>(5.0));
  for (int t = 0; t < 10; ++t) {
    EXPECT_EQ(model.BudgetForTick(t, 1.0), 5);
  }
}

TEST(BandwidthModelTest, FractionalRateAccumulatesCredit) {
  BandwidthModel model(std::make_unique<ConstantFluctuation>(0.5));
  int64_t total = 0;
  for (int t = 0; t < 100; ++t) total += model.BudgetForTick(t, 1.0);
  EXPECT_EQ(total, 50);  // 0.5 msg/s over 100 s
}

TEST(BandwidthModelTest, SineAveragesOut) {
  Rng rng(4);
  BandwidthModel model(MakeBandwidthFluctuation(10.0, 0.25, &rng));
  int64_t total = 0;
  const int kTicks = 1000;
  for (int t = 0; t < kTicks; ++t) total += model.BudgetForTick(t, 1.0);
  EXPECT_NEAR(static_cast<double>(total) / kTicks, 10.0, 0.5);
}

TEST(LinkTest, DeliversUpToBudget) {
  Link link("test", ConstantBandwidth(3.0));
  link.BeginTick(0.0, 1.0);
  for (int i = 0; i < 5; ++i) {
    Message message;
    message.object_index = i;
    link.Enqueue(message);
  }
  std::vector<int64_t> delivered;
  link.DeliverQueued([&](const Message& m) { delivered.push_back(m.object_index); });
  EXPECT_EQ(delivered, (std::vector<int64_t>{0, 1, 2}));  // FIFO, 3 of 5
  EXPECT_EQ(link.queue_size(), 2u);
  EXPECT_EQ(link.remaining_budget(), 0);

  link.BeginTick(1.0, 1.0);
  delivered.clear();
  link.DeliverQueued([&](const Message& m) { delivered.push_back(m.object_index); });
  EXPECT_EQ(delivered, (std::vector<int64_t>{3, 4}));
  EXPECT_EQ(link.remaining_budget(), 1);
}

TEST(LinkTest, ConsumeBudgetGrantsPartial) {
  Link link("test", ConstantBandwidth(2.0));
  link.BeginTick(0.0, 1.0);
  EXPECT_EQ(link.ConsumeBudget(5), 2);
  EXPECT_EQ(link.ConsumeBudget(1), 0);
}

TEST(LinkTest, UtilizationTracksUsedOverOffered) {
  Link link("test", ConstantBandwidth(4.0));
  link.BeginTick(0.0, 1.0);
  link.ConsumeBudget(2);
  link.BeginTick(1.0, 1.0);  // closes previous tick's accounting
  EXPECT_DOUBLE_EQ(link.utilization().utilization(), 0.5);
}

TEST(LinkTest, QueueGrowsWhenOverloaded) {
  Link link("test", ConstantBandwidth(1.0));
  for (int tick = 0; tick < 10; ++tick) {
    link.BeginTick(tick, 1.0);
    for (int i = 0; i < 3; ++i) link.Enqueue(Message{});
    link.DeliverQueued([](const Message&) {});
  }
  // 30 enqueued, 10 delivered.
  EXPECT_EQ(link.queue_size(), 20u);
  EXPECT_GE(link.max_queue_size(), 20u);
}

TEST(LinkTest, ResetStatsPreservesQueue) {
  Link link("test", ConstantBandwidth(1.0));
  link.BeginTick(0.0, 1.0);
  link.Enqueue(Message{});
  link.Enqueue(Message{});
  link.ResetStats();
  EXPECT_EQ(link.queue_size(), 2u);
  EXPECT_EQ(link.messages_delivered(), 0);
}

TEST(NetworkTest, ConstructsStarTopology) {
  NetworkConfig config;
  config.num_sources = 4;
  config.cache_bandwidth_avg = 10.0;
  config.source_bandwidth_avg = 2.0;
  Rng rng(1);
  Network network(config, &rng);
  EXPECT_EQ(network.num_sources(), 4);
  network.BeginTick(0.0, 1.0);
  EXPECT_EQ(network.cache_link().tick_budget(), 10);
  EXPECT_EQ(network.source_link(0).tick_budget(), 2);
}

TEST(NetworkTest, UnconstrainedSourceBandwidth) {
  NetworkConfig config;
  config.num_sources = 1;
  config.cache_bandwidth_avg = 5.0;
  config.source_bandwidth_avg = -1.0;  // unconstrained
  Rng rng(1);
  Network network(config, &rng);
  network.BeginTick(0.0, 1.0);
  EXPECT_GT(network.source_link(0).tick_budget(), 1000000);
}

TEST(NetworkTest, ControlMailDeliveredNextTick) {
  NetworkConfig config;
  config.num_sources = 2;
  config.cache_bandwidth_avg = 5.0;
  Rng rng(1);
  Network network(config, &rng);

  network.BeginTick(0.0, 1.0);
  Message feedback;
  feedback.kind = MessageKind::kFeedback;
  network.SendToSource(1, feedback);
  // Not deliverable within the same tick.
  EXPECT_TRUE(network.TakeSourceMail(1).empty());

  network.BeginTick(1.0, 1.0);
  auto mail = network.TakeSourceMail(1);
  ASSERT_EQ(mail.size(), 1u);
  EXPECT_EQ(mail[0].kind, MessageKind::kFeedback);
  // Draining is destructive.
  EXPECT_TRUE(network.TakeSourceMail(1).empty());
  // The other source got nothing.
  EXPECT_TRUE(network.TakeSourceMail(0).empty());
}

TEST(NetworkTest, ControlMailInvisibleUntilNextTickAndDrainedOnce) {
  // The double-buffer contract in one place: a deposit during tick t is
  // invisible for the whole of tick t (even across multiple reads), becomes
  // deliverable exactly at tick t+1, is drained exactly once, and does not
  // reappear at tick t+2.
  NetworkConfig config;
  config.num_sources = 1;
  config.cache_bandwidth_avg = 5.0;
  Rng rng(1);
  Network network(config, &rng);

  network.BeginTick(0.0, 1.0);
  Message feedback;
  feedback.kind = MessageKind::kFeedback;
  network.SendToSource(0, feedback);
  network.SendToSource(0, feedback);      // two deposits in the same tick
  EXPECT_TRUE(network.TakeSourceMail(0).empty());
  EXPECT_TRUE(network.TakeSourceMail(0).empty());  // still invisible

  network.BeginTick(1.0, 1.0);
  EXPECT_EQ(network.TakeSourceMail(0).size(), 2u);  // both, exactly once
  EXPECT_TRUE(network.TakeSourceMail(0).empty());

  network.BeginTick(2.0, 1.0);
  EXPECT_TRUE(network.TakeSourceMail(0).empty());  // gone for good
}

TEST(NetworkTest, UndrainedMailSurvivesIntoLaterTicks) {
  // A tick that never drains its mail must not lose it: deliverable mail
  // accumulates until the source reads it.
  NetworkConfig config;
  config.num_sources = 1;
  config.cache_bandwidth_avg = 5.0;
  Rng rng(1);
  Network network(config, &rng);

  network.BeginTick(0.0, 1.0);
  Message feedback;
  feedback.kind = MessageKind::kFeedback;
  network.SendToSource(0, feedback);
  network.BeginTick(1.0, 1.0);  // deliverable, but nobody drains
  network.SendToSource(0, feedback);
  network.BeginTick(2.0, 1.0);
  EXPECT_EQ(network.TakeSourceMail(0).size(), 2u);
}

TEST(NetworkTest, FluctuatingBandwidthAverages) {
  NetworkConfig config;
  config.num_sources = 1;
  config.cache_bandwidth_avg = 20.0;
  config.bandwidth_change_rate = 0.05;
  Rng rng(7);
  Network network(config, &rng);
  int64_t total = 0;
  const int kTicks = 2000;
  for (int t = 0; t < kTicks; ++t) {
    network.BeginTick(t, 1.0);
    total += network.cache_link().tick_budget();
  }
  EXPECT_NEAR(static_cast<double>(total) / kTicks, 20.0, 1.0);
}

}  // namespace
}  // namespace besync
