// Property-based suites (parameterized sweeps and randomized fuzzing) over
// the library's core invariants:
//  - bookkeeping exactness (trackers and ground truth vs brute force),
//  - conservation laws (messages enqueued = delivered + dropped + queued),
//  - statistical properties of generators and estimators over grids,
//  - determinism of whole experiments,
//  - scale/metric invariants of the priority policies.

#include <cmath>
#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "baseline/freq_allocation.h"
#include "baseline/lambda_estimator.h"
#include "data/workload.h"
#include "divergence/ground_truth.h"
#include "divergence/metric.h"
#include "divergence/tracker.h"
#include "exp/experiment.h"
#include "net/link.h"
#include "priority/priority.h"
#include "util/random.h"

namespace besync {
namespace {

// ------------------------------------------------ Tracker vs brute force

class TrackerFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrackerFuzzTest, IntegralMatchesBruteForce) {
  Rng rng(GetParam());
  ValueDeviationMetric metric;
  DivergenceTracker tracker(&metric);
  tracker.OnRefresh(0.0, 0.0, 0);

  // Brute force: remember every (time, divergence) breakpoint.
  std::vector<std::pair<double, double>> breakpoints{{0.0, 0.0}};
  double t = 0.0;
  double value = 0.0;
  double shipped = 0.0;
  int64_t version = 0;
  for (int step = 0; step < 200; ++step) {
    t += rng.Exponential(1.0);
    if (rng.Bernoulli(0.15)) {
      tracker.OnRefresh(t, value, version);
      shipped = value;
      breakpoints.clear();
      breakpoints.emplace_back(t, 0.0);
    } else {
      value += rng.Bernoulli(0.5) ? 1.0 : -1.0;
      ++version;
      tracker.OnUpdate(t, value, version);
      breakpoints.emplace_back(t, std::abs(value - shipped));
    }
  }
  const double end = t + rng.Exponential(1.0);
  double brute = 0.0;
  for (size_t k = 0; k < breakpoints.size(); ++k) {
    const double until = k + 1 < breakpoints.size() ? breakpoints[k + 1].first : end;
    brute += breakpoints[k].second * (until - breakpoints[k].first);
  }
  EXPECT_NEAR(tracker.IntegralTo(end), brute, 1e-9 * (1.0 + brute));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackerFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// -------------------------------------------- GroundTruth vs brute force

class GroundTruthFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroundTruthFuzzTest, IntegralMatchesBruteForce) {
  WorkloadConfig workload_config;
  workload_config.num_sources = 1;
  workload_config.objects_per_source = 4;
  workload_config.seed = GetParam();
  Workload workload = std::move(MakeWorkload(workload_config)).ValueOrDie();
  LagMetric metric;
  GroundTruth ground_truth(&workload, &metric);
  ground_truth.Initialize(0.0);
  ground_truth.StartMeasurement(0.0);

  Rng rng(GetParam() * 1000 + 17);
  struct State {
    double source_value = 0.0;
    int64_t source_version = 0;
    double cached_value = 0.0;
    int64_t cached_version = 0;
  };
  std::vector<State> states(4);
  double t = 0.0;
  double brute = 0.0;
  double last_t = 0.0;
  auto total_divergence = [&states]() {
    double total = 0.0;
    for (const State& s : states) {
      total += static_cast<double>(s.source_version - s.cached_version);
    }
    return total;
  };
  for (int step = 0; step < 500; ++step) {
    t += rng.Exponential(2.0);
    brute += total_divergence() * (t - last_t);
    last_t = t;
    const int i = static_cast<int>(rng.UniformInt(0, 3));
    if (rng.Bernoulli(0.6)) {
      states[i].source_value += 1.0;
      ++states[i].source_version;
      ground_truth.OnSourceUpdate(i, t, states[i].source_value,
                                  states[i].source_version);
    } else {
      states[i].cached_value = states[i].source_value;
      states[i].cached_version = states[i].source_version;
      ground_truth.OnCacheApply(i, t, states[i].cached_value,
                                states[i].cached_version);
    }
  }
  const double end = t + 1.0;
  brute += total_divergence() * (end - last_t);
  ground_truth.FinishMeasurement(end);
  EXPECT_NEAR(ground_truth.TotalWeightedAverage() * end, brute,
              1e-9 * (1.0 + brute));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroundTruthFuzzTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

// ------------------------------------------------------ Link conservation

class LinkConservationTest : public ::testing::TestWithParam<double> {};

TEST_P(LinkConservationTest, EnqueuedEqualsDeliveredPlusDroppedPlusQueued) {
  const double loss = GetParam();
  Link link("fuzz", std::make_unique<BandwidthModel>(
                        std::make_unique<ConstantFluctuation>(3.0)));
  if (loss > 0.0) link.SetLossRate(loss, 77);
  Rng rng(5);
  int64_t enqueued = 0;
  int64_t delivered = 0;
  for (int tick = 0; tick < 500; ++tick) {
    link.BeginTick(tick, 1.0);
    const int64_t arrivals = rng.UniformInt(0, 6);
    for (int64_t k = 0; k < arrivals; ++k) {
      Message message;
      message.cost = rng.Bernoulli(0.2) ? 3 : 1;  // mixed sizes
      link.Enqueue(message);
      ++enqueued;
    }
    delivered += link.DeliverQueued([](const Message&) {});
  }
  EXPECT_EQ(enqueued, delivered + link.messages_dropped() +
                          static_cast<int64_t>(link.queue_size()));
}

INSTANTIATE_TEST_SUITE_P(LossRates, LinkConservationTest,
                         ::testing::Values(0.0, 0.1, 0.5));

// ----------------------------------------- Generator statistical sweeps

class BernoulliRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(BernoulliRateSweep, LongRunRateMatches) {
  const double p = GetParam();
  BernoulliRandomWalkProcess process(p);
  Rng rng(31);
  double t = 0.0;
  int64_t count = 0;
  const double horizon = 50000.0;
  while (true) {
    t = process.NextUpdateTime(t, &rng);
    if (t >= horizon) break;
    ++count;
  }
  EXPECT_NEAR(static_cast<double>(count) / horizon, p, 0.02 + 0.03 * p);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, BernoulliRateSweep,
                         ::testing::Values(0.01, 0.1, 0.5, 0.9, 1.0));

class PoissonRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(PoissonRateSweep, LongRunRateMatches) {
  const double lambda = GetParam();
  PoissonRandomWalkProcess process(lambda);
  Rng rng(33);
  double t = 0.0;
  int64_t count = 0;
  const double horizon = 20000.0;
  while (true) {
    t = process.NextUpdateTime(t, &rng);
    if (t >= horizon) break;
    ++count;
  }
  EXPECT_NEAR(static_cast<double>(count) / horizon, lambda, 0.05 * lambda + 0.005);
}

INSTANTIATE_TEST_SUITE_P(Lambdas, PoissonRateSweep,
                         ::testing::Values(0.05, 0.3, 1.0, 3.0));

class BandwidthAverageSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(BandwidthAverageSweep, LongRunBudgetMatchesAverage) {
  const auto [average, change_rate] = GetParam();
  Rng rng(7);
  BandwidthModel model(MakeBandwidthFluctuation(average, change_rate, &rng));
  int64_t total = 0;
  const int kTicks = 5000;
  for (int t = 0; t < kTicks; ++t) total += model.BudgetForTick(t, 1.0);
  EXPECT_NEAR(static_cast<double>(total) / kTicks, average,
              0.05 * average + 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BandwidthAverageSweep,
    ::testing::Combine(::testing::Values(0.5, 2.0, 17.0, 400.0),
                       ::testing::Values(0.0, 0.005, 0.05, 0.25)));

// -------------------------------------------------- Estimator grid sweep

class EstimatorSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(EstimatorSweep, BothEstimatorsConvergeWhenPollsResolveChanges) {
  const auto [lambda, tau] = GetParam();
  Rng rng(101);
  BooleanChangeEstimator boolean(1.0, 3, 0.0);
  LastModifiedEstimator last_modified(1.0, 3, 0.0);
  double t = 0.0;
  double last_update = -1.0;
  for (int i = 0; i < 30000; ++i) {
    const double start = t;
    t += tau;
    double u = start;
    bool changed = false;
    while (true) {
      u += rng.Exponential(lambda);
      if (u > t) break;
      last_update = u;
      changed = true;
    }
    boolean.RecordPoll(t, changed, -1.0);
    last_modified.RecordPoll(t, changed, changed ? last_update : -1.0);
  }
  // The last-modified estimator is consistent everywhere.
  EXPECT_NEAR(last_modified.Estimate(), lambda, 0.1 * lambda + 0.01);
  // The boolean estimator is consistent while lambda*tau is moderate.
  if (lambda * tau < 1.0) {
    EXPECT_NEAR(boolean.Estimate(), lambda, 0.15 * lambda + 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, EstimatorSweep,
                         ::testing::Combine(::testing::Values(0.05, 0.2, 0.8),
                                            ::testing::Values(0.5, 1.0, 4.0)));

// ----------------------------------------------- Allocation grid sweep

class AllocationSweep : public ::testing::TestWithParam<double> {};

TEST_P(AllocationSweep, BudgetBindsAndFreshnessMonotone) {
  Rng rng(55);
  std::vector<double> lambdas(200);
  for (double& lambda : lambdas) lambda = rng.Uniform(0.01, 1.0);

  const double bandwidth = GetParam();
  auto result = SolveFreshnessAllocation(lambdas, {}, bandwidth);
  ASSERT_TRUE(result.ok());
  double total = 0.0;
  for (double f : result->frequencies) {
    EXPECT_GE(f, 0.0);
    total += f;
  }
  EXPECT_NEAR(total, bandwidth, 1e-4 * bandwidth + 1e-9);

  // More bandwidth can only improve the optimum.
  auto more = SolveFreshnessAllocation(lambdas, {}, bandwidth * 1.5);
  ASSERT_TRUE(more.ok());
  EXPECT_GE(more->total_weighted_freshness,
            result->total_weighted_freshness - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Budgets, AllocationSweep,
                         ::testing::Values(1.0, 10.0, 60.0, 300.0));

// ---------------------------------------------- Policy scale invariance

class PolicyScaleTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyScaleTest, PriorityLinearInWeight) {
  ValueDeviationMetric metric;
  DivergenceTracker tracker(&metric);
  tracker.OnRefresh(0.0, 0.0, 0);
  tracker.OnUpdate(1.0, 3.0, 1);
  tracker.OnUpdate(2.5, 5.0, 2);
  auto policy = MakePolicy(GetParam());
  PriorityContext context;
  context.tracker = &tracker;
  context.lambda_estimate = 0.4;
  context.max_divergence_rate = 0.7;
  context.history_rate = 0.2;
  context.weight = 1.0;
  const double base = policy->Priority(context, 6.0);
  context.weight = 3.5;
  EXPECT_NEAR(policy->Priority(context, 6.0), 3.5 * base,
              1e-12 * std::abs(base) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyScaleTest,
                         ::testing::Values(PolicyKind::kArea, PolicyKind::kNaive,
                                           PolicyKind::kPoissonStaleness,
                                           PolicyKind::kPoissonLag,
                                           PolicyKind::kBound,
                                           PolicyKind::kAreaHistory));

// ----------------------------------------------- Experiment determinism

class DeterminismTest : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(DeterminismTest, SameConfigSameResult) {
  ExperimentConfig config;
  config.scheduler = GetParam();
  config.metric = MetricKind::kValueDeviation;
  config.workload.num_sources = 4;
  config.workload.objects_per_source = 8;
  config.workload.seed = 77;
  config.harness.warmup = 20.0;
  config.harness.measure = 150.0;
  config.cache_bandwidth_avg = 8.0;
  auto a = RunExperiment(config);
  auto b = RunExperiment(config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->per_object_weighted, b->per_object_weighted);
  EXPECT_EQ(a->scheduler.refreshes_delivered, b->scheduler.refreshes_delivered);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, DeterminismTest,
    ::testing::Values(SchedulerKind::kCooperative, SchedulerKind::kIdealCooperative,
                      SchedulerKind::kIdealCacheBased, SchedulerKind::kCGM1,
                      SchedulerKind::kCGM2, SchedulerKind::kRoundRobin));

// ------------------------------------------------- Staleness range sweep

class StalenessRangeTest
    : public ::testing::TestWithParam<std::tuple<SchedulerKind, double>> {};

TEST_P(StalenessRangeTest, StalenessAlwaysWithinUnitInterval) {
  const auto [kind, bandwidth] = GetParam();
  ExperimentConfig config;
  config.scheduler = kind;
  config.metric = MetricKind::kStaleness;
  config.workload.num_sources = 3;
  config.workload.objects_per_source = 10;
  config.workload.seed = 5;
  config.harness.warmup = 20.0;
  config.harness.measure = 200.0;
  config.cache_bandwidth_avg = bandwidth;
  auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->per_object_unweighted, 0.0);
  EXPECT_LE(result->per_object_unweighted, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StalenessRangeTest,
    ::testing::Combine(::testing::Values(SchedulerKind::kCooperative,
                                         SchedulerKind::kIdealCooperative,
                                         SchedulerKind::kCGM2),
                       ::testing::Values(1.0, 10.0, 100.0)));

// ---------------------------------------- Message conservation end to end

TEST(ConservationTest, CooperativeSentVsDelivered) {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCooperative;
  config.metric = MetricKind::kValueDeviation;
  config.workload.num_sources = 6;
  config.workload.objects_per_source = 15;
  config.workload.seed = 13;
  config.harness.warmup = 0.0;  // count from the very beginning
  config.harness.measure = 300.0;
  config.cache_bandwidth_avg = 10.0;
  auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  // Without loss, everything sent is delivered or still queued; since the
  // queue is bounded, sent and delivered stay close.
  EXPECT_GE(result->scheduler.refreshes_sent, result->scheduler.refreshes_delivered);
  EXPECT_LE(result->scheduler.refreshes_sent - result->scheduler.refreshes_delivered,
            result->scheduler.max_cache_queue + 1);
}

// ---------------------------------------------- Lag monotonicity property

TEST(LagMonotonicityTest, LagNeverDecreasesWithoutRefresh) {
  LagMetric metric;
  DivergenceTracker tracker(&metric);
  tracker.OnRefresh(0.0, 0.0, 0);
  Rng rng(3);
  double previous = 0.0;
  double t = 0.0;
  for (int i = 1; i <= 300; ++i) {
    t += rng.Exponential(1.0);
    tracker.OnUpdate(t, rng.NextDouble(), i);
    EXPECT_GE(tracker.current_divergence(), previous);
    previous = tracker.current_divergence();
  }
  EXPECT_DOUBLE_EQ(previous, 300.0);
}

}  // namespace
}  // namespace besync
