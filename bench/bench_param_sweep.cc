// Section 6.1: tuning the threshold-setting parameters. The paper sweeps the
// threshold increase factor (alpha) and decrease factor (omega) over
// synthetic random-walk configurations with fluctuating weights and
// bandwidth, and reports that
//   alpha = 1.1, omega = 10
// gave the lowest average divergence under all three metrics, while nearby
// settings (e.g. alpha = 1.2, omega = 20) "gave similar results" — the
// algorithm is not overly sensitive.
//
// This binary reproduces the grid and prints, per (alpha, omega), the
// average divergence normalized to the best cell (1.0 = best).

#include <limits>

#include "bench_common.h"
#include "exp/experiment.h"
#include "exp/sweep.h"
#include "util/stats.h"

namespace besync {
namespace {

struct Cell {
  double alpha;
  double omega;
  double divergence = 0.0;
};

int Run(const BenchOptions& options) {
  std::cout << "== Section 6.1 threshold parameter sweep ==\n"
            << "Paper result: alpha = 1.1, omega = 10 best; algorithm not overly\n"
            << "sensitive (normalized values near 1 across the grid).\n\n";

  const std::vector<double> alphas =
      options.full ? std::vector<double>{1.02, 1.05, 1.1, 1.2, 1.5, 2.0}
                   : std::vector<double>{1.05, 1.1, 1.2, 1.5};
  const std::vector<double> omegas =
      options.full ? std::vector<double>{2.0, 5.0, 10.0, 20.0, 50.0}
                   : std::vector<double>{2.0, 10.0, 50.0};

  // A mid-contention configuration with fluctuating weights and bandwidth —
  // the regime where threshold adaptation actually matters. One runner job
  // per (alpha, omega, metric); each builds its own workload, which is
  // bit-identical across cells sharing a seed (see exp/runner.h).
  auto make_cell_job = [&](double alpha, double omega, MetricKind metric) {
    ExperimentJob job;
    job.name = "alpha=" + TablePrinter::Cell(alpha) +
               ",omega=" + TablePrinter::Cell(omega) + "," +
               MetricKindToString(metric);
    ExperimentConfig& config = job.config;
    config.scheduler = SchedulerKind::kCooperative;
    config.metric = metric;
    config.workload.num_sources = options.full ? 100 : 20;
    config.workload.objects_per_source = 10;
    config.workload.rate_lo = 0.0;
    config.workload.rate_hi = 1.0;
    config.workload.weight_fluctuation_amplitude = 0.5;
    config.workload.seed = options.seed;
    config.harness.warmup = 200.0;
    config.harness.measure = options.full ? 5000.0 : 1200.0;
    config.cache_bandwidth_avg =
        0.3 * config.workload.num_sources * config.workload.objects_per_source;
    config.source_bandwidth_avg = 0.6 * config.workload.objects_per_source;
    config.bandwidth_change_rate = 0.05;
    config.threshold.increase = alpha;
    config.threshold.decrease = omega;
    return job;
  };

  const MetricKind metrics[] = {MetricKind::kStaleness, MetricKind::kLag,
                                MetricKind::kValueDeviation};
  std::vector<ExperimentJob> jobs;
  for (double alpha : alphas) {
    for (double omega : omegas) {
      for (MetricKind metric : metrics) {
        jobs.push_back(make_cell_job(alpha, omega, metric));
      }
    }
  }

  const std::vector<JobResult> results =
      RunExperiments(jobs, options.runner("param sweep"));
  CheckJobsOk(results);
  EmitJson(results, options);

  std::vector<Cell> cells;
  double best = std::numeric_limits<double>::infinity();
  size_t k = 0;
  for (double alpha : alphas) {
    for (double omega : omegas) {
      Cell cell{alpha, omega};
      // Sum across the three metrics (normalized to the best cell later).
      for (size_t metric = 0; metric < 3; ++metric) {
        cell.divergence += results[k++].result.total_weighted_divergence;
      }
      best = std::min(best, cell.divergence);
      cells.push_back(cell);
    }
  }

  TablePrinter table({"alpha", "omega", "divergence_sum", "normalized"});
  for (const Cell& cell : cells) {
    table.AddRow({TablePrinter::Cell(cell.alpha), TablePrinter::Cell(cell.omega),
                  TablePrinter::Cell(cell.divergence),
                  TablePrinter::Cell(cell.divergence / best)});
  }
  EmitTable(table, options);
  return 0;
}

}  // namespace
}  // namespace besync

int main(int argc, char** argv) {
  return besync::Run(besync::BenchOptions::Parse(argc, argv));
}
