// Section 7 ablation: cooperation in competitive environments. The cache
// and the sources deliberately disagree about which objects matter (each
// side weights an independent random half of the objects 10x). The cache
// dedicates the fraction Ψ of its bandwidth to source priorities, divided
// per one of the three options the paper describes:
//   (1) equal share per source,
//   (2) share proportional to the source's object count,
//   (3) piggyback Ψ/(1-Ψ) own-choice objects per cache-priority refresh.
//
// The paper gives no numbers for this section; the expected qualitative
// behaviour is a dial: larger Ψ improves the sources' objective at the
// expense of the cache's objective, under every option.

#include <cmath>

#include "bench_common.h"
#include "core/competitive.h"
#include "core/harness.h"
#include "divergence/metric.h"

namespace besync {
namespace {

/// Reassigns objects to sources with linearly growing sizes (source j gets
/// a share proportional to j+1) so that option (2), proportional shares,
/// actually differs from option (1), equal shares. Grouping stays
/// contiguous, as the source agents require.
void MakeHeterogeneousSources(Workload* workload) {
  const int m = workload->num_sources;
  const int64_t total = workload->total_objects();
  const double unit = static_cast<double>(total) / (m * (m + 1) / 2.0);
  int64_t next = 0;
  for (int j = 0; j < m; ++j) {
    int64_t count = std::max<int64_t>(1, std::llround(unit * (j + 1)));
    if (j == m - 1) count = total - next;  // absorb rounding
    for (int64_t k = 0; k < count && next < total; ++k, ++next) {
      workload->objects[next].source_index = j;
    }
  }
}

int Run(const BenchOptions& options) {
  std::cout << "== Section 7 ablation: competitive resource sharing ==\n"
            << "cache_div / source_div = weighted divergence under the cache's\n"
            << "vs the sources' weighting scheme. Expect source_div to fall and\n"
            << "cache_div to rise as psi grows, for every option.\n\n";

  WorkloadConfig base;
  base.num_sources = options.full ? 20 : 8;
  base.objects_per_source = 20;
  base.rate_lo = 0.02;
  base.rate_hi = 1.0;
  base.weight_scheme = WeightScheme::kHalfHeavy;
  base.heavy_weight = 10.0;
  base.seed = options.seed + 7;

  HarnessConfig harness_config;
  harness_config.warmup = 200.0;
  harness_config.measure = options.full ? 4000.0 : 1500.0;

  const double bandwidth = 0.2 * base.num_sources * base.objects_per_source;
  const std::vector<double> psis = options.full
                                       ? std::vector<double>{0.0, 0.1, 0.25, 0.5, 0.75}
                                       : std::vector<double>{0.0, 0.25, 0.5};

  auto metric = MakeMetric(MetricKind::kValueDeviation);
  TablePrinter table({"option", "psi", "cache_div", "source_div"});
  for (ShareOption option : {ShareOption::kEqualShare, ShareOption::kProportionalShare,
                             ShareOption::kPiggyback}) {
    for (double psi : psis) {
      Workload workload = std::move(MakeWorkload(base)).ValueOrDie();
      MakeHeterogeneousSources(&workload);
      AssignConflictingSourceWeights(&workload, 10.0, options.seed + 77);

      Harness harness(&workload, metric.get(), harness_config);
      GroundTruth source_view(&workload, metric.get(), /*use_source_weights=*/true);
      harness.AddGroundTruth(&source_view);

      CompetitiveConfig config;
      config.base.cache_bandwidth_avg = bandwidth;
      config.psi = psi;
      config.option = option;
      CompetitiveScheduler scheduler(config);
      BESYNC_CHECK_OK(harness.Run(&scheduler));

      table.AddRow(
          {ShareOptionToString(option), TablePrinter::Cell(psi),
           TablePrinter::Cell(harness.ground_truth().PerObjectWeightedAverage()),
           TablePrinter::Cell(source_view.PerObjectWeightedAverage())});
    }
  }
  EmitTable(table, options);
  return 0;
}

}  // namespace
}  // namespace besync

int main(int argc, char** argv) {
  return besync::Run(besync::BenchOptions::Parse(argc, argv));
}
