// Figure 5: "Average divergence over wind buoy data". The paper monitors
// wind vectors from m = 40 ocean buoys (2 numeric components each, measured
// every 10 minutes, 7 days of data with day 1 as warm-up), equally weighted,
// under the value deviation metric delta = |V1 - V2|. The satellite link
// (cache-side bandwidth, messages/minute) is capped between 1 and 80 —
// first held constant, then fluctuating with mB = 0.25. Two curves per
// panel: our algorithm and the idealized scenario.
//
// Paper result: our algorithm's average value deviation per data value
// closely follows the ideal curve, decaying from ~0.5-0.9 at bandwidth 1
// toward ~0 as bandwidth approaches 80 (the wind values live in 0-10 with
// typical values around 5, so 0.5 is roughly 10% divergence).
//
// The real TAO/PMEL archive is not available offline; this reproduction
// generates statistically comparable traces (see DESIGN.md, Substitutions).
//
// Runs on the parallel experiment runner via the clone-per-job path: the
// buoy trace workload is generated once and every (mode, bandwidth,
// scheduler) job receives a private CloneWorkload deep copy, so all jobs
// score the identical measurement stream and --threads=N is free to
// reorder execution without changing a byte of the --json output.

#include "bench_common.h"
#include "core/system.h"
#include "data/buoy_trace.h"
#include "exp/experiment.h"

namespace besync {
namespace {

int Run(const BenchOptions& options) {
  std::cout << "== Figure 5: wind-buoy monitoring (synthetic TAO stand-in) ==\n"
            << "Average value deviation per data value vs link bandwidth\n"
            << "(messages/minute). Paper shape: ours closely tracks ideal,\n"
            << "both decaying toward 0 by bandwidth ~80.\n\n";

  const std::vector<double> bandwidths =
      options.full
          ? std::vector<double>{1, 2, 4, 8, 12, 16, 24, 32, 40, 48, 56, 64, 72, 80}
          : std::vector<double>{1, 2, 4, 8, 16, 32, 56, 80};

  BuoyTraceConfig trace_config;
  trace_config.seed = 2000 + options.seed;
  if (!options.full) trace_config.duration = 4.0 * 86400.0;  // 4 of 7 days

  // Time unit remains seconds; the link budget is expressed per minute in
  // the paper, so bandwidth B msgs/min = B/60 msgs/s with 60 s ticks.
  HarnessConfig harness_config;
  harness_config.tick_length = 60.0;
  harness_config.warmup = 86400.0;  // first day
  harness_config.measure = trace_config.duration - harness_config.warmup;

  const Workload workload = std::move(MakeBuoyWorkload(trace_config)).ValueOrDie();

  // Grid: mode-major, then bandwidth, then (ideal, ours) — two consecutive
  // jobs per table row.
  std::vector<ExperimentJob> jobs;
  for (const bool fluctuating : {false, true}) {
    for (double per_minute : bandwidths) {
      ExperimentConfig config;
      config.metric = MetricKind::kValueDeviation;
      config.harness = harness_config;
      config.cache_bandwidth_avg = per_minute / 60.0;
      config.bandwidth_change_rate = fluctuating ? 0.25 / 60.0 : 0.0;
      config.workload.seed = trace_config.seed;  // JSON metadata only
      for (SchedulerKind scheduler :
           {SchedulerKind::kIdealCooperative, SchedulerKind::kCooperative}) {
        ExperimentJob job;
        job.config = config;
        job.config.scheduler = scheduler;
        job.name = std::string(fluctuating ? "fluctuating" : "fixed") +
                   ",B/min=" + TablePrinter::Cell(per_minute) + "," +
                   SchedulerKindToString(scheduler);
        jobs.push_back(std::move(job));
      }
    }
  }

  const std::vector<JobResult> results =
      RunExperimentsOnWorkload(workload, jobs, options.runner("fig5"));
  CheckJobsOk(results);

  TablePrinter table({"mode", "bandwidth_per_min", "ideal", "our_algorithm"});
  size_t job_index = 0;
  for (const bool fluctuating : {false, true}) {
    for (double per_minute : bandwidths) {
      const JobResult& ideal = results[job_index++];
      const JobResult& ours = results[job_index++];
      table.AddRow({fluctuating ? "fluctuating" : "fixed",
                    TablePrinter::Cell(per_minute),
                    TablePrinter::Cell(ideal.result.per_object_weighted),
                    TablePrinter::Cell(ours.result.per_object_weighted)});
    }
  }
  EmitTable(table, options);
  EmitJson(results, options);
  return 0;
}

}  // namespace
}  // namespace besync

int main(int argc, char** argv) {
  return besync::Run(besync::BenchOptions::Parse(argc, argv));
}
