// Section 10.1 ablation: priority functions with a longer history window.
// The paper's priority uses only the current refresh interval and suggests
// exploring longer histories "to trade adaptiveness and reduced state for
// possibly more reliable predictions of future behavior".
//
// We sweep the history blend share beta (0 = the paper's pure area policy,
// 1 = fully history-driven) on
//  (a) a stationary workload, where a moderate history share should be
//      roughly neutral, and
//  (b) a regime-switching workload whose objects alternate between hot and
//      cold phases, probing exactly the adaptiveness-vs-stability trade the
//      paper describes.

#include <memory>

#include "bench_common.h"
#include "core/system.h"
#include "data/update_process.h"
#include "exp/experiment.h"

namespace besync {
namespace {

Workload MakeSwitchingWorkload(const WorkloadConfig& base, double regime_length) {
  Workload workload = std::move(MakeWorkload(base)).ValueOrDie();
  Rng rng(base.seed ^ 0xabcdefULL);
  for (ObjectSpec& spec : workload.objects) {
    // Hot/cold rates straddle the original rate; desynchronized regimes.
    const double hot = spec.lambda * 1.8;
    const double cold = spec.lambda * 0.2;
    spec.process = std::make_unique<RegimeSwitchingProcess>(
        hot, cold, regime_length * rng.Uniform(0.7, 1.3));
  }
  return workload;
}

int Run(const BenchOptions& options) {
  std::cout << "== Section 10.1 ablation: history-extended priority ==\n"
            << "beta = weight of the learned historical rate in the priority\n"
            << "(0 = the paper's area policy). Ideal scheduler, so the effect\n"
            << "of the policy is isolated from protocol noise.\n\n";

  WorkloadConfig base;
  base.num_sources = options.full ? 20 : 10;
  base.objects_per_source = 20;
  base.rate_lo = 0.02;
  base.rate_hi = 1.0;
  base.seed = options.seed + 17;

  HarnessConfig harness;
  harness.warmup = 200.0;
  harness.measure = options.full ? 4000.0 : 1500.0;

  const double bandwidth = 0.25 * base.num_sources * base.objects_per_source;
  const std::vector<double> betas =
      options.full ? std::vector<double>{0.0, 0.1, 0.25, 0.5, 0.75, 1.0}
                   : std::vector<double>{0.0, 0.25, 0.5, 1.0};

  auto metric = MakeMetric(MetricKind::kValueDeviation);
  TablePrinter table({"workload", "beta", "divergence"});
  for (const bool switching : {false, true}) {
    for (double beta : betas) {
      Workload workload = switching ? MakeSwitchingWorkload(base, 150.0)
                                    : std::move(MakeWorkload(base)).ValueOrDie();
      IdealConfig config;
      config.cache_bandwidth_avg = bandwidth;
      config.policy = beta == 0.0 ? PolicyKind::kArea : PolicyKind::kAreaHistory;
      config.history_beta = beta;
      IdealCooperativeScheduler scheduler(config);
      auto result = RunScheduler(&workload, metric.get(), harness, &scheduler);
      BESYNC_CHECK_OK(result.status());
      table.AddRow({switching ? "regime-switching" : "stationary",
                    TablePrinter::Cell(beta),
                    TablePrinter::Cell(result->per_object_weighted)});
    }
  }
  EmitTable(table, options);
  return 0;
}

}  // namespace
}  // namespace besync

int main(int argc, char** argv) {
  return besync::Run(besync::BenchOptions::Parse(argc, argv));
}
