#ifndef BESYNC_BENCH_BENCH_COMMON_H_
#define BESYNC_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "util/flags.h"
#include "util/logging.h"
#include "util/table_printer.h"

namespace besync {

/// Common command-line surface of every experiment binary:
///   --full        run the paper-scale sweep (default: scaled-down)
///   --csv <path>  also dump the result table as CSV
///   --seed <n>    workload seed override
struct BenchOptions {
  bool full = false;
  std::string csv;
  uint64_t seed = 1;

  static BenchOptions Parse(int argc, char** argv,
                            std::vector<std::string> extra_flags = {}) {
    std::vector<std::string> known{"full", "csv", "seed"};
    for (auto& flag : extra_flags) known.push_back(std::move(flag));
    Flags flags;
    const Status status = Flags::Parse(argc, argv, known, &flags);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      std::exit(2);
    }
    BenchOptions options;
    options.full = flags.GetBool("full", false);
    options.csv = flags.GetString("csv", "");
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
    options.flags = flags;
    return options;
  }

  Flags flags;  // access to extra flags
};

/// Prints the table and optionally writes the CSV copy.
inline void EmitTable(const TablePrinter& table, const BenchOptions& options) {
  table.Print(std::cout);
  if (!options.csv.empty()) {
    const Status status = table.WriteCsv(options.csv);
    if (!status.ok()) {
      std::fprintf(stderr, "CSV write failed: %s\n", status.ToString().c_str());
    } else {
      std::fprintf(stderr, "wrote %s\n", options.csv.c_str());
    }
  }
}

}  // namespace besync

#endif  // BESYNC_BENCH_BENCH_COMMON_H_
