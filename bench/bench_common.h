#ifndef BESYNC_BENCH_BENCH_COMMON_H_
#define BESYNC_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "obs/export.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/table_printer.h"

namespace besync {

/// Common command-line surface of every experiment binary:
///   --full        run the paper-scale sweep (default: scaled-down)
///   --csv <path>  also dump the result table as CSV
///   --json <path> dump raw per-job RunResults as JSON (exp/runner.h schema)
///   --threads <n> experiment-runner worker threads (0 = hardware cores)
///   --seed <n>    workload seed override
///   --perf        add a "perf" member (wall time, peak RSS, us/refresh) to
///                 the --json output; off by default because those fields
///                 are nondeterministic and would break the byte-identical
///                 JSON guarantee the trajectory baselines rely on
struct BenchOptions {
  bool full = false;
  std::string csv;
  std::string json;
  int threads = 1;
  uint64_t seed = 1;
  bool perf = false;

  static BenchOptions Parse(int argc, char** argv,
                            std::vector<std::string> extra_flags = {}) {
    std::vector<std::string> known{"full", "csv", "json", "threads", "seed", "perf"};
    for (auto& flag : extra_flags) known.push_back(std::move(flag));
    Flags flags;
    const Status status = Flags::Parse(argc, argv, known, &flags);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      std::exit(2);
    }
    BenchOptions options;
    options.full = flags.GetBool("full", false);
    options.csv = flags.GetString("csv", "");
    options.json = flags.GetString("json", "");
    options.threads = static_cast<int>(flags.GetInt("threads", 1));
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
    options.perf = flags.GetBool("perf", false);
    options.flags = flags;
    return options;
  }

  /// RunnerOptions carrying this invocation's --threads.
  RunnerOptions runner(std::string progress_label) const {
    RunnerOptions options;
    options.threads = threads;
    options.progress_label = std::move(progress_label);
    return options;
  }

  Flags flags;  // access to extra flags
};

/// Splits a comma-separated flag value into its non-empty items.
inline std::vector<std::string> SplitList(const std::string& text) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t comma = text.find(',', start);
    const size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > start) parts.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

/// Parses "--flag a,b,c" into doubles, exiting with a usage error on junk
/// or an empty list (`flag` names the flag in the message).
inline std::vector<double> ParseDoubleList(const std::string& flag,
                                           const std::string& text) {
  std::vector<double> values;
  for (const std::string& part : SplitList(text)) {
    char* end = nullptr;
    const double value = std::strtod(part.c_str(), &end);
    if (end == part.c_str() || *end != '\0') {
      std::fprintf(stderr, "--%s: not a number: '%s'\n", flag.c_str(), part.c_str());
      std::exit(2);
    }
    values.push_back(value);
  }
  if (values.empty()) {
    std::fprintf(stderr, "--%s: empty list\n", flag.c_str());
    std::exit(2);
  }
  return values;
}

inline std::vector<int> ParseIntList(const std::string& flag, const std::string& text) {
  std::vector<int> values;
  for (double value : ParseDoubleList(flag, text)) {
    values.push_back(static_cast<int>(value));
  }
  return values;
}

/// Parses one eviction-policy name (`lru`, `lfu`, `divergence`), exiting
/// with a usage error naming `flag` on anything else.
inline EvictionPolicy ParseEvictionPolicy(const std::string& flag,
                                          const std::string& name) {
  static const EvictionPolicy kinds[] = {EvictionPolicy::kLru, EvictionPolicy::kLfu,
                                         EvictionPolicy::kDivergenceAware};
  for (EvictionPolicy kind : kinds) {
    if (EvictionPolicyToString(kind) == name) return kind;
  }
  std::fprintf(stderr, "--%s: unknown eviction policy '%s' (lru, lfu, divergence)\n",
               flag.c_str(), name.c_str());
  std::exit(2);
}

/// Prints the table and optionally writes the CSV copy.
inline void EmitTable(const TablePrinter& table, const BenchOptions& options) {
  table.Print(std::cout);
  if (!options.csv.empty()) {
    const Status status = table.WriteCsv(options.csv);
    if (!status.ok()) {
      std::fprintf(stderr, "CSV write failed: %s\n", status.ToString().c_str());
    } else {
      std::fprintf(stderr, "wrote %s\n", options.csv.c_str());
    }
  }
}

/// Peak resident set size of this process in bytes, read from
/// /proc/self/status (VmHWM). Returns 0 where the proc interface is
/// unavailable (non-Linux) — graceful degradation, never an error.
inline int64_t ReadPeakRssBytes() {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0;
  int64_t bytes = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    long long kib = 0;
    if (std::sscanf(line, "VmHWM: %lld kB", &kib) == 1) {
      bytes = static_cast<int64_t>(kib) * 1024;
      break;
    }
  }
  std::fclose(file);
  return bytes;
}

/// Run-cost summary of a bench invocation: total per-job wall seconds
/// (overlapping under --threads > 1), peak RSS, and the headline
/// microseconds-per-delivered-refresh. Emitted into --json output under the
/// stable "perf" member when --perf is set.
struct BenchPerf {
  double run_seconds = 0.0;
  int64_t peak_rss_bytes = 0;
  int64_t refreshes_delivered = 0;
  double us_per_refresh = 0.0;
};

inline BenchPerf BenchPerfFromResults(const std::vector<JobResult>& results) {
  BenchPerf perf;
  for (const JobResult& job : results) {
    perf.run_seconds += job.wall_seconds;
    if (job.status.ok()) {
      perf.refreshes_delivered += job.result.scheduler.refreshes_delivered;
    }
  }
  perf.peak_rss_bytes = ReadPeakRssBytes();
  perf.us_per_refresh =
      perf.refreshes_delivered > 0
          ? perf.run_seconds * 1e6 / static_cast<double>(perf.refreshes_delivered)
          : 0.0;
  return perf;
}

/// Serializes `perf` as the pre-rendered top-level JSON member consumed by
/// WriteResultsJson's `extra_top_level` parameter.
inline std::string PerfJsonFragment(const BenchPerf& perf) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "\"perf\": {\"run_seconds\": %.6f, \"peak_rss_bytes\": %lld, "
                "\"refreshes_delivered\": %lld, \"us_per_refresh\": %.4f}",
                perf.run_seconds, static_cast<long long>(perf.peak_rss_bytes),
                static_cast<long long>(perf.refreshes_delivered),
                perf.us_per_refresh);
  return buffer;
}

/// Writes the raw runner results to --json when requested (BENCH_*.json
/// trajectory tracking; byte-identical at any --threads). With --perf the
/// output additionally carries the nondeterministic "perf" member — never
/// use --perf for recorded baselines. Exits nonzero when the requested
/// output cannot be written — a caller scripting trajectory capture must
/// not mistake a silent no-op for success.
inline void EmitJson(const std::vector<JobResult>& results,
                     const BenchOptions& options) {
  if (options.json.empty()) return;
  const std::string extra =
      options.perf ? PerfJsonFragment(BenchPerfFromResults(results)) : std::string();
  const Status status = WriteResultsJson(options.json, results, extra);
  if (!status.ok()) {
    std::fprintf(stderr, "JSON write failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
  std::fprintf(stderr, "wrote %s\n", options.json.c_str());
}

/// Observability flag surface shared by the obs-wired benches (append
/// ObsFlagNames() to the bench's extra-flags list):
///   --timeseries_out <path>    per-tick metric series (besync.timeseries.v1)
///   --trace_out <path>         message-lifecycle + tick-phase trace
///                              (besync.trace.v1; loads in Perfetto and
///                              chrome://tracing)
///   --obs_sample_interval <s>  time-series sample spacing (default 1.0)
///   --obs_max_samples <n>      decimation budget per series (default 512)
///   --trace_start <t> / --trace_end <t>  trace window, simulation seconds
/// Either output path switches ObsConfig::enabled on; --trace_out also
/// turns event tracing on. Enabling observability never changes run
/// results, but it is a cooperative-engine feature — grids that include
/// baseline schedulers must apply `config` to their cooperative jobs only.
struct ObsBenchOptions {
  std::string timeseries_out;
  std::string trace_out;
  ObsConfig config;

  bool wanted() const { return !timeseries_out.empty() || !trace_out.empty(); }
};

inline std::vector<std::string> ObsFlagNames() {
  return {"timeseries_out", "trace_out", "obs_sample_interval",
          "obs_max_samples", "trace_start", "trace_end"};
}

inline ObsBenchOptions ObsFromFlags(const BenchOptions& options) {
  ObsBenchOptions obs;
  obs.timeseries_out = options.flags.GetString("timeseries_out", "");
  obs.trace_out = options.flags.GetString("trace_out", "");
  obs.config.enabled = obs.wanted();
  obs.config.trace = !obs.trace_out.empty();
  obs.config.sample_interval =
      options.flags.GetDouble("obs_sample_interval", obs.config.sample_interval);
  obs.config.max_samples = static_cast<int>(
      options.flags.GetInt("obs_max_samples", obs.config.max_samples));
  obs.config.trace_start =
      options.flags.GetDouble("trace_start", obs.config.trace_start);
  obs.config.trace_end = options.flags.GetDouble("trace_end", obs.config.trace_end);
  return obs;
}

/// Writes the requested observability files from a finished grid, one entry
/// per job in grid order (jobs that ran without obs enabled are skipped by
/// the writers). Mirrors EmitJson: exits nonzero when a requested output
/// cannot be written.
inline void EmitObsOutputs(const std::vector<JobResult>& results,
                           const ObsBenchOptions& obs) {
  if (!obs.wanted()) return;
  std::vector<ObsJob> jobs;
  jobs.reserve(results.size());
  for (const JobResult& job : results) {
    jobs.push_back({job.name, job.result.obs.get()});
  }
  const auto emit = [&jobs](const std::string& path,
                            Status (*write)(const std::string&,
                                            const std::vector<ObsJob>&)) {
    if (path.empty()) return;
    const Status status = write(path, jobs);
    if (!status.ok()) {
      std::fprintf(stderr, "obs write failed: %s\n", status.ToString().c_str());
      std::exit(1);
    }
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  };
  emit(obs.timeseries_out, &WriteTimeSeriesFile);
  emit(obs.trace_out, &WriteTraceFile);
}

/// Exits nonzero on the first failed job, printing its name and status —
/// the bench equivalent of BESYNC_CHECK_OK per job.
inline void CheckJobsOk(const std::vector<JobResult>& results) {
  for (const JobResult& job : results) {
    if (!job.status.ok()) {
      std::fprintf(stderr, "job '%s' failed: %s\n", job.name.c_str(),
                   job.status.ToString().c_str());
      std::exit(1);
    }
  }
}

}  // namespace besync

#endif  // BESYNC_BENCH_BENCH_COMMON_H_
