// bench_fault: crash recovery vs steady-state freshness — the recovery
// crossover of the fault-injection subsystem.
//
// Runs the cooperative engine on one partitioned multi-cache workload while
// sweeping the fault axes (exp/fault_sweep.h): crash count x consistency
// protocol x relay depth, with both recovery policies at every regime.
// Every crash hits leaf cache 0, so "warm divergence" — the summed
// divergence of the caches that never crash — cleanly prices what recovery
// aggressiveness costs the rest of the tree, while time_to_resync_p95
// prices how long the cold cache stays unsynchronized. The interesting
// output is the recovery summary: the dedicated recovery channel
// (policy=priority) should beat naive re-enqueueing on time-to-resync
// without losing warm-cache freshness in at least one regime — the
// acceptance criterion tools/record_bench.py --check enforces on
// BENCH_fault.json.
//
// Defaults finish in seconds; --full runs a larger shape. Like the other
// runner benches, --threads=N parallelizes the grid and --json output is
// byte-identical at any thread count.

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exp/fault_sweep.h"

namespace besync {
namespace {

/// Parses one protocol name (`push-refresh`, `invalidation`, `ttl-lease`),
/// exiting with a usage error naming `flag` on anything else.
SyncProtocolKind ParseProtocolKind(const std::string& flag, const std::string& name) {
  static const SyncProtocolKind kinds[] = {SyncProtocolKind::kPushRefresh,
                                           SyncProtocolKind::kInvalidation,
                                           SyncProtocolKind::kTtlLease};
  for (SyncProtocolKind kind : kinds) {
    if (SyncProtocolKindToString(kind) == name) return kind;
  }
  std::fprintf(stderr,
               "--%s: unknown protocol '%s' (push-refresh, invalidation, ttl-lease)\n",
               flag.c_str(), name.c_str());
  std::exit(2);
}

int Run(const BenchOptions& options) {
  FaultSweepConfig config;
  config.base.scheduler = SchedulerKind::kCooperative;
  config.base.metric = MetricKind::kValueDeviation;
  config.base.workload.num_sources =
      static_cast<int>(options.flags.GetInt("sources", options.full ? 16 : 8));
  config.base.workload.objects_per_source =
      static_cast<int>(options.flags.GetInt("objects", options.full ? 25 : 12));
  const int num_caches =
      static_cast<int>(options.flags.GetInt("caches", options.full ? 4 : 3));
  config.base.workload.num_caches = num_caches;
  config.base.workload.interest_pattern =
      num_caches == 1 ? InterestPattern::kSingleCache
                      : InterestPattern::kPartitionedBySource;
  config.base.workload.rate_lo = 0.0;
  config.base.workload.rate_hi = 1.0;
  config.base.workload.seed = options.seed;
  config.base.workload.relay_bandwidth_factor =
      options.flags.GetDouble("relay_factor", 1.0);
  config.base.harness.warmup = options.flags.GetDouble("warmup", 50.0);
  config.base.harness.measure =
      options.flags.GetDouble("measure", options.full ? 2000.0 : 600.0);
  config.base.cache_bandwidth_avg = options.flags.GetDouble("cache_bw", 6.0);
  // A finite source uplink makes recovery a real allocation decision: the
  // resync traffic and the fresh updates compete for the same budget.
  config.base.source_bandwidth_avg = options.flags.GetDouble("source_bw", 3.0);
  config.base.run_threads =
      static_cast<int>(options.flags.GetInt("run_threads", 1));
  config.threads = options.threads;
  // Observability outputs (--timeseries_out / --trace_out; bench_common.h).
  // The fault sweep is cooperative-only, so the config applies to every job
  // — this is the bench that shows a crash -> resync timeline in Perfetto.
  const ObsBenchOptions obs = ObsFromFlags(options);
  config.base.obs = obs.config;

  config.read_rate = options.flags.GetDouble("fault_read_rate", 2.0);
  config.crash_duration = options.flags.GetDouble("fault_crash_duration", 25.0);
  config.window_start = options.flags.GetDouble("fault_window_start", 80.0);
  config.window_end = options.flags.GetDouble(
      "fault_window_end", config.base.harness.warmup +
                              config.base.harness.measure * 0.6);
  config.fault_seed =
      static_cast<uint64_t>(options.flags.GetInt("fault_seed", 1234));
  config.relay_failures =
      static_cast<int>(options.flags.GetInt("fault_relay_failures", 1));

  if (options.flags.Has("fault_crashes")) {
    config.crash_counts =
        ParseIntList("fault_crashes", options.flags.GetString("fault_crashes", ""));
  } else {
    config.crash_counts = options.full ? std::vector<int>{1, 3, 6}
                                       : std::vector<int>{1, 3};
  }
  if (options.flags.Has("tiers")) {
    config.relay_tiers = ParseIntList("tiers", options.flags.GetString("tiers", ""));
  } else {
    config.relay_tiers = {0, 2};
  }
  if (options.flags.Has("protocols")) {
    config.protocols.clear();
    for (const std::string& name :
         SplitList(options.flags.GetString("protocols", ""))) {
      config.protocols.push_back(ParseProtocolKind("protocols", name));
    }
  } else {
    config.protocols = {SyncProtocolKind::kPushRefresh,
                        SyncProtocolKind::kInvalidation};
  }

  std::vector<JobResult> raw;
  const auto points = RunFaultSweep(config, &raw);
  if (!points.ok()) {
    std::fprintf(stderr, "fault sweep failed: %s\n",
                 points.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"crashes", "protocol", "tiers", "policy", "total_div",
                      "warm_div", "resync_p95", "resync_pend", "dropped_pulls",
                      "delivered", "wall_ms"});
  for (const FaultSweepPoint& point : *points) {
    const SchedulerStats& s = point.result.scheduler;
    table.AddRow({TablePrinter::Cell(point.crashes),
                  SyncProtocolKindToString(point.protocol),
                  TablePrinter::Cell(point.relay_tiers),
                  RecoveryPolicyToString(point.policy),
                  TablePrinter::Cell(point.result.total_weighted_divergence),
                  TablePrinter::Cell(point.warm_divergence()),
                  TablePrinter::Cell(point.time_to_resync_p95()),
                  TablePrinter::Cell(s.resync_pending),
                  TablePrinter::Cell(s.crash_dropped_pulls),
                  TablePrinter::Cell(s.refreshes_delivered),
                  TablePrinter::Cell(point.wall_seconds * 1e3)});
  }
  EmitTable(table, options);

  // Recovery summary: policies are innermost in the sweep order, so each
  // regime is one consecutive block of |policies| points. A regime's row
  // names the policy with the better (lower) resync p95 — treating an
  // unfinished resync (resync_pending > 0) as worse than any finished one —
  // and the warm-divergence cost of choosing it.
  const size_t stride = config.policies.size();
  TablePrinter recovery({"crashes", "protocol", "tiers", "resync_winner",
                         "warm_div_naive", "warm_div_priority"});
  for (size_t base = 0; base + stride <= points->size(); base += stride) {
    size_t best = base;
    auto resync_key = [&points](size_t k) {
      const FaultSweepPoint& point = (*points)[k];
      return point.result.scheduler.resync_pending > 0
                 ? std::numeric_limits<double>::infinity()
                 : point.time_to_resync_p95();
    };
    double warm_naive = 0.0;
    double warm_priority = 0.0;
    for (size_t k = base; k < base + stride; ++k) {
      if (resync_key(k) < resync_key(best)) best = k;
      const FaultSweepPoint& point = (*points)[k];
      if (point.policy == RecoveryPolicy::kNaiveReenqueue) {
        warm_naive = point.warm_divergence();
      } else {
        warm_priority = point.warm_divergence();
      }
    }
    const FaultSweepPoint& regime = (*points)[base];
    recovery.AddRow({TablePrinter::Cell(regime.crashes),
                     SyncProtocolKindToString(regime.protocol),
                     TablePrinter::Cell(regime.relay_tiers),
                     RecoveryPolicyToString((*points)[best].policy),
                     TablePrinter::Cell(warm_naive),
                     TablePrinter::Cell(warm_priority)});
  }
  std::printf("\nrecovery (better resync p95 per regime):\n");
  recovery.Print(std::cout);

  EmitJson(raw, options);
  EmitObsOutputs(raw, obs);
  CheckJobsOk(raw);
  return 0;
}

}  // namespace
}  // namespace besync

int main(int argc, char** argv) {
  std::vector<std::string> flags{
      "sources", "objects", "caches", "tiers", "protocols", "relay_factor",
      "warmup", "measure", "cache_bw", "source_bw", "run_threads",
      "fault_crashes", "fault_crash_duration", "fault_window_start",
      "fault_window_end", "fault_read_rate", "fault_relay_failures",
      "fault_seed"};
  for (std::string& flag : besync::ObsFlagNames()) flags.push_back(std::move(flag));
  return besync::Run(besync::BenchOptions::Parse(argc, argv, std::move(flags)));
}
