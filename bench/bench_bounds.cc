// Section 9 (divergence bounding) ablation. The paper derives the priority
//   P = R_i (t - t_last)^2 / 2 * W
// for minimizing the average *upper bound* on divergence when objects have
// known maximum divergence rates R_i, and notes the threshold algorithm can
// drive it. The paper reports no numbers for this section, so this is an
// ablation of the design choice:
//
//  - On a deterministic-drift workload (divergence == bound exactly, since
//    the value grows at rate R_i between refreshes) the bound policy should
//    match the area policy — it *is* the area priority of the bound curve —
//    and both should beat the naive weighted-divergence policy.
//  - On a random-walk workload (actual divergence is noisy, bound is loose)
//    the update-aware area policy should win on actual divergence, because
//    the bound policy is update-oblivious by construction.

#include "bench_common.h"
#include "core/system.h"
#include "exp/experiment.h"

namespace besync {
namespace {

Workload MakeDriftWorkload(const WorkloadConfig& base) {
  // Start from the standard generator (rates, weights, seeds), then replace
  // every process with a deterministic drift of the same rate.
  Workload workload = std::move(MakeWorkload(base)).ValueOrDie();
  for (ObjectSpec& spec : workload.objects) {
    spec.process = std::make_unique<DriftProcess>(spec.lambda, 1.0);
    spec.max_divergence_rate = spec.lambda;  // exact bound rate
  }
  return workload;
}

int Run(const BenchOptions& options) {
  std::cout << "== Section 9 ablation: divergence-bound scheduling ==\n"
            << "drift workload: divergence == bound, so the 'divergence' column\n"
            << "is the average bound. Expected: bound ~ area < naive there;\n"
            << "area < bound on the random-walk workload (actual divergence).\n\n";

  WorkloadConfig base;
  base.num_sources = options.full ? 20 : 10;
  base.objects_per_source = 20;
  base.rate_lo = 0.02;
  base.rate_hi = 1.0;
  base.seed = options.seed + 9;

  HarnessConfig harness;
  harness.warmup = 200.0;
  harness.measure = options.full ? 5000.0 : 1500.0;

  const double bandwidth = 0.15 * base.num_sources * base.objects_per_source;

  TablePrinter table({"workload", "policy", "avg_divergence", "refreshes"});
  for (const bool drift : {true, false}) {
    for (PolicyKind policy :
         {PolicyKind::kBound, PolicyKind::kArea, PolicyKind::kNaive}) {
      Workload workload = drift ? MakeDriftWorkload(base)
                                : std::move(MakeWorkload(base)).ValueOrDie();
      ExperimentConfig config;
      config.scheduler = SchedulerKind::kCooperative;
      config.metric = MetricKind::kValueDeviation;
      config.harness = harness;
      config.cache_bandwidth_avg = bandwidth;
      config.policy = policy;
      auto result = RunExperimentOnWorkload(config, &workload);
      BESYNC_CHECK_OK(result.status());
      table.AddRow({drift ? "drift(=bound)" : "random-walk",
                    PolicyKindToString(policy),
                    TablePrinter::Cell(result->per_object_weighted),
                    TablePrinter::Cell(result->scheduler.refreshes_delivered)});
    }
  }
  EmitTable(table, options);
  return 0;
}

}  // namespace
}  // namespace besync

int main(int argc, char** argv) {
  return besync::Run(besync::BenchOptions::Parse(argc, argv));
}
