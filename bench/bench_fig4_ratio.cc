// Figure 4: "Comparison against the idealized scenario". For every
// combination of
//   m in {1,10,100,1000} sources, n in {1,10,100} objects/source,
//   B_S in {10,100}, B_C in {10,100,1000,10000,100000},
//   mB in {0, 0.005, 0.05, 0.25},
// (with fluctuating weights and Poisson random-walk data) the paper plots
// one point per configuration: x = the average divergence theoretically
// attainable by the idealized global scheduler, y = the ratio of our
// algorithm's divergence to that ideal. Three panels: value deviation, lag,
// staleness.
//
// Paper result: the ratio falls toward ~1 as the attainable divergence
// grows (low bandwidth / many fast objects), and stays below ~4 even where
// divergence is tiny and the *absolute* gap is negligible.
//
// Default mode runs a representative subset (capped object counts); --full
// runs the paper-scale cross product.

#include "bench_common.h"
#include "exp/experiment.h"
#include "exp/sweep.h"

namespace besync {
namespace {

struct Config {
  int m;
  int n;
  double source_bw;
  double cache_bw;
  double change_rate;
};

int Run(const BenchOptions& options) {
  std::cout << "== Figure 4: ratio of actual to ideal divergence ==\n"
            << "One row per configuration and metric: x = theoretically\n"
            << "achievable divergence (ideal scheduler), ratio = ours/ideal.\n"
            << "Paper shape: ratio -> 1 as x grows; modest (<~4) everywhere.\n\n";

  const std::vector<int> ms =
      options.full ? std::vector<int>{1, 10, 100, 1000} : std::vector<int>{1, 10, 100};
  const std::vector<int> ns =
      options.full ? std::vector<int>{1, 10, 100} : std::vector<int>{1, 10};
  const std::vector<double> source_bws{10.0, 100.0};
  const std::vector<double> cache_bws =
      options.full ? std::vector<double>{10, 100, 1000, 10000, 100000}
                   : std::vector<double>{10, 100, 1000};
  const std::vector<double> change_rates =
      options.full ? std::vector<double>{0.0, 0.005, 0.05, 0.25}
                   : std::vector<double>{0.0, 0.05};
  const double measure = options.full ? 5000.0 : 800.0;
  const int64_t max_objects = options.full ? 100000 : 2000;

  std::vector<Config> configs;
  for (int m : ms) {
    for (int n : ns) {
      if (static_cast<int64_t>(m) * n > max_objects) continue;
      for (double source_bw : source_bws) {
        for (double cache_bw : cache_bws) {
          // Skip configurations where the cache bandwidth dwarfs even the
          // total source capacity many times over AND the object count —
          // they all sit at divergence ~0 (the paper's dense cluster at the
          // origin) and dominate runtime in full mode.
          if (cache_bw > 10.0 * m * n && cache_bw > 10.0 * source_bw * m) continue;
          for (double change_rate : change_rates) {
            configs.push_back(Config{m, n, source_bw, cache_bw, change_rate});
          }
        }
      }
    }
  }

  // Two runner jobs per (metric, configuration): the ideal oracle at 2k and
  // our algorithm at 2k+1. The pair no longer shares one Workload object
  // (jobs may run concurrently — see the hazard note in exp/runner.h); both
  // jobs carry the identical WorkloadConfig instead, which reproduces the
  // same update streams deterministically.
  const MetricKind metrics[] = {MetricKind::kValueDeviation, MetricKind::kLag,
                                MetricKind::kStaleness};
  std::vector<ExperimentJob> jobs;
  for (MetricKind metric : metrics) {
    for (const Config& c : configs) {
      ExperimentConfig config;
      config.metric = metric;
      config.workload.num_sources = c.m;
      config.workload.objects_per_source = c.n;
      config.workload.rate_lo = 0.0;
      config.workload.rate_hi = 1.0;
      config.workload.weight_fluctuation_amplitude = 0.5;
      config.workload.seed = options.seed + static_cast<uint64_t>(c.m * 131 + c.n);
      // Sub-second ticks keep the scheduling-granularity floor small so the
      // low-divergence region (left side of the paper's panels) reflects
      // protocol overheads rather than tick discretization.
      config.harness.tick_length = 0.25;
      config.harness.warmup = 200.0;
      config.harness.measure = measure;
      config.cache_bandwidth_avg = c.cache_bw;
      config.source_bandwidth_avg = c.source_bw;
      config.bandwidth_change_rate = c.change_rate;

      const std::string key = std::string(MetricKindToString(metric)) +
                              ",m=" + std::to_string(c.m) +
                              ",n=" + std::to_string(c.n) +
                              ",B_C=" + TablePrinter::Cell(c.cache_bw) +
                              ",B_S=" + TablePrinter::Cell(c.source_bw) +
                              ",mB=" + TablePrinter::Cell(c.change_rate);
      config.scheduler = SchedulerKind::kIdealCooperative;
      jobs.push_back(ExperimentJob{"ideal," + key, config});
      config.scheduler = SchedulerKind::kCooperative;
      jobs.push_back(ExperimentJob{"ours," + key, config});
    }
  }

  const std::vector<JobResult> results = RunExperiments(jobs, options.runner("fig4"));
  CheckJobsOk(results);
  EmitJson(results, options);

  TablePrinter table({"metric", "m", "n", "B_S", "B_C", "mB", "ideal_divergence",
                      "ours_divergence", "ratio"});
  size_t k = 0;
  for (MetricKind metric : metrics) {
    for (const Config& c : configs) {
      const double x = results[k].result.total_weighted_divergence;
      const double y = results[k + 1].result.total_weighted_divergence;
      k += 2;
      const double ratio = x > 1e-9 ? y / x : (y < 1e-9 ? 1.0 : 99.0);
      table.AddRow({MetricKindToString(metric), TablePrinter::Cell(c.m),
                    TablePrinter::Cell(c.n), TablePrinter::Cell(c.source_bw),
                    TablePrinter::Cell(c.cache_bw),
                    TablePrinter::Cell(c.change_rate), TablePrinter::Cell(x),
                    TablePrinter::Cell(y), TablePrinter::Cell(ratio)});
    }
  }
  EmitTable(table, options);
  return 0;
}

}  // namespace
}  // namespace besync

int main(int argc, char** argv) {
  return besync::Run(besync::BenchOptions::Parse(argc, argv));
}
