// Multi-cache topology sweep: the cooperative protocol over N caches with
// independent cache-side links, under partitioned vs. Zipf-overlap interest
// maps. Reports, per (pattern, N):
//
//   - the summed objective (total weighted divergence over all replicas),
//   - refreshes delivered across all caches,
//   - wall-clock time and microseconds per delivered refresh (the
//     per-refresh cost must not grow superlinearly with N).
//
// Under the partitioned pattern the N caches are disjoint single-cache
// systems over sub-workloads; under Zipf overlap a popular minority of
// objects is replicated at several caches, so sources maintain multiple
// thresholds T_{j,c} and split their bandwidth across cache channels.

#include "bench_common.h"
#include "exp/multicache.h"

namespace besync {
namespace {

int Run(const BenchOptions& options) {
  std::cout << "== Multi-cache topology sweep (cooperative protocol) ==\n"
            << "Partitioned interest = disjoint sub-systems; Zipf overlap =\n"
            << "popular objects replicated at several caches.\n\n";

  MulticacheConfig config;
  config.threads = options.threads;
  config.base.workload.num_sources = options.full ? 64 : 16;
  config.base.workload.objects_per_source = options.full ? 25 : 10;
  config.base.workload.rate_lo = 0.0;
  config.base.workload.rate_hi = 1.0;
  config.base.workload.seed = options.seed;
  config.base.harness.warmup = 100.0;
  config.base.harness.measure = options.full ? 2000.0 : 500.0;
  // Per-cache bandwidth in the contention regime (~30% of the per-cache
  // object population's update volume under partitioned interest).
  config.base.cache_bandwidth_avg =
      options.full ? 200.0 : 24.0;
  config.base.source_bandwidth_avg = options.full ? 12.0 : 6.0;
  config.cache_counts = {1, 2, 4, 8};
  config.patterns = {InterestPattern::kPartitionedBySource,
                     InterestPattern::kZipfOverlap};

  // Per-point wall times below are measured inside worker threads; with
  // --threads > 1 they overlap, so compare them only at --threads=1.
  std::vector<JobResult> raw_results;
  auto points = RunMulticacheSweep(config, &raw_results);
  EmitJson(raw_results, options);
  if (!points.ok()) {
    std::fprintf(stderr, "%s\n", points.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"pattern", "caches", "replicas", "total_div", "per_replica",
                      "delivered", "wall_ms", "us_per_refresh"});
  for (const MulticachePoint& point : *points) {
    const int64_t delivered = point.result.scheduler.refreshes_delivered;
    const double us_per_refresh =
        delivered > 0 ? point.wall_seconds * 1e6 / static_cast<double>(delivered)
                      : 0.0;
    table.AddRow({TablePrinter::Cell(InterestPatternToString(point.pattern)),
                  TablePrinter::Cell(point.num_caches),
                  TablePrinter::Cell(point.total_replicas),
                  TablePrinter::Cell(point.result.total_weighted_divergence),
                  TablePrinter::Cell(point.result.total_weighted_divergence /
                                     static_cast<double>(point.total_replicas)),
                  TablePrinter::Cell(delivered),
                  TablePrinter::Cell(point.wall_seconds * 1e3),
                  TablePrinter::Cell(us_per_refresh)});
  }
  EmitTable(table, options);
  return 0;
}

}  // namespace
}  // namespace besync

int main(int argc, char** argv) {
  return besync::Run(besync::BenchOptions::Parse(argc, argv));
}
