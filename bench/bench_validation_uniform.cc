// Section 4.3, first validation experiment: a single source with n objects
// (n from 1 to 1000), random-walk data updated with per-second probability
// drawn uniformly, all weights 1, bandwidth 10 refreshes/second. The paper
// reports that under uniform parameters the area priority and the simple
// weighted-divergence priority differ by LESS THAN 10% in time-averaged
// divergence, for all three metrics.
//
// This binary reproduces the sweep and prints the naive/area divergence
// ratio per (metric, n).

#include "bench_common.h"
#include "exp/experiment.h"

namespace besync {
namespace {

int Run(const BenchOptions& options) {
  std::cout << "== Section 4.3 validation (uniform parameters) ==\n"
            << "Paper result: naive (P = D*W) within 10% of the area priority\n"
            << "in all runs. Expect ratios close to 1.\n\n";

  const std::vector<int> object_counts =
      options.full ? std::vector<int>{1, 10, 100, 1000}
                   : std::vector<int>{1, 10, 100, 300};
  const double measure = options.full ? 5000.0 : 1500.0;

  TablePrinter table({"metric", "n", "area", "naive", "naive/area"});
  for (MetricKind metric : {MetricKind::kStaleness, MetricKind::kLag,
                            MetricKind::kValueDeviation}) {
    for (int n : object_counts) {
      ExperimentConfig config;
      // The paper's setup prioritizes directly: the idealized scheduler with
      // the policy under test, one source, B = 10 refreshes/s.
      config.scheduler = SchedulerKind::kIdealCooperative;
      config.metric = metric;
      config.workload.num_sources = 1;
      config.workload.objects_per_source = n;
      config.workload.update_model = WorkloadConfig::UpdateModel::kBernoulli;
      config.workload.rate_lo = 0.0;
      config.workload.rate_hi = 1.0;
      config.workload.seed = options.seed + n;
      config.harness.warmup = 200.0;
      config.harness.measure = measure;
      config.cache_bandwidth_avg = 10.0;

      config.policy = PolicyKind::kArea;
      auto area = RunExperiment(config);
      BESYNC_CHECK_OK(area.status());
      config.policy = PolicyKind::kNaive;
      auto naive = RunExperiment(config);
      BESYNC_CHECK_OK(naive.status());

      const double ratio = area->total_weighted_divergence > 0.0
                               ? naive->total_weighted_divergence /
                                     area->total_weighted_divergence
                               : 1.0;
      table.AddRow({MetricKindToString(metric), TablePrinter::Cell(n),
                    TablePrinter::Cell(area->per_object_weighted),
                    TablePrinter::Cell(naive->per_object_weighted),
                    TablePrinter::Cell(ratio)});
    }
  }
  EmitTable(table, options);
  return 0;
}

}  // namespace
}  // namespace besync

int main(int argc, char** argv) {
  return besync::Run(besync::BenchOptions::Parse(argc, argv));
}
