// Figure 6: "Comparison against cache-based synchronization policies".
// m in {10, 100, 1000} sources with n = 10 objects each (Poisson random-walk
// data, unweighted staleness metric); cache-side bandwidth varied between
// 10% and 90% of the total object count; source-side bandwidth
// unconstrained (the CGM polling model assumes none); bandwidth constant
// (mB = 0); 500 s measurement after warm-up. Five curves:
//   ideal cooperative, our algorithm, ideal cache-based, CGM1, CGM2.
//
// Paper result: cooperative scheduling clearly beats cache-based policies —
// "ideal cooperative" < "our algorithm" < "ideal cache-based" < CGM1 < CGM2
// at every bandwidth fraction, with the cooperative advantage largest in
// the mid-bandwidth range.

#include <iterator>

#include "bench_common.h"
#include "exp/experiment.h"
#include "exp/sweep.h"

namespace besync {
namespace {

int Run(const BenchOptions& options) {
  std::cout << "== Figure 6: cooperative vs cache-based scheduling ==\n"
            << "Average unweighted staleness vs bandwidth fraction of m*n.\n"
            << "Paper order (best to worst): ideal-coop, ours, ideal-cache,\n"
            << "CGM1, CGM2.\n\n";

  const std::vector<int> ms =
      options.full ? std::vector<int>{10, 100, 1000} : std::vector<int>{10, 100};
  const std::vector<double> fractions =
      options.full ? LinSpace(0.1, 0.9, 9) : std::vector<double>{0.1, 0.3, 0.5, 0.7, 0.9};
  const double measure = 500.0;  // the paper's (shorter) window for this one
  const int n = 10;

  const SchedulerKind kinds[] = {
      SchedulerKind::kIdealCooperative, SchedulerKind::kCooperative,
      SchedulerKind::kIdealCacheBased, SchedulerKind::kCGM1, SchedulerKind::kCGM2};

  // Five runner jobs per (m, fraction) — one per curve. The five no longer
  // share one Workload object (jobs may run concurrently — see the hazard
  // note in exp/runner.h); they carry the identical WorkloadConfig, which
  // reproduces the same update streams deterministically.
  std::vector<ExperimentJob> jobs;
  for (int m : ms) {
    for (double fraction : fractions) {
      ExperimentConfig config;
      config.metric = MetricKind::kStaleness;
      config.workload.num_sources = m;
      config.workload.objects_per_source = n;
      config.workload.rate_lo = 0.0;
      config.workload.rate_hi = 1.0;
      config.workload.seed = options.seed + static_cast<uint64_t>(m);
      // The paper's sources react to updates immediately; a 1 s scheduling
      // tick would impose a staleness floor of ~lambda/2 per object. A
      // 0.25 s tick keeps the discretization artifact well below the
      // effects being measured.
      config.harness.tick_length = 0.25;
      config.harness.warmup = 200.0;
      config.harness.measure = measure;
      config.cache_bandwidth_avg = fraction * m * n;
      config.source_bandwidth_avg = -1.0;  // unconstrained, per the paper
      config.bandwidth_change_rate = 0.0;

      for (SchedulerKind kind : kinds) {
        config.scheduler = kind;
        jobs.push_back(ExperimentJob{SchedulerKindToString(kind) +
                                         ",m=" + std::to_string(m) + ",frac=" +
                                         TablePrinter::Cell(fraction),
                                     config});
      }
    }
  }

  const std::vector<JobResult> results = RunExperiments(jobs, options.runner("fig6"));
  CheckJobsOk(results);
  EmitJson(results, options);

  TablePrinter table({"m", "bandwidth_fraction", "ideal_cooperative",
                      "our_algorithm", "ideal_cache_based", "cgm1", "cgm2"});
  size_t k = 0;
  for (int m : ms) {
    for (double fraction : fractions) {
      std::vector<std::string> row{TablePrinter::Cell(m),
                                   TablePrinter::Cell(fraction)};
      for (size_t curve = 0; curve < std::size(kinds); ++curve) {
        row.push_back(TablePrinter::Cell(results[k++].result.per_object_unweighted));
      }
      table.AddRow(std::move(row));
    }
  }
  EmitTable(table, options);
  return 0;
}

}  // namespace
}  // namespace besync

int main(int argc, char** argv) {
  return besync::Run(besync::BenchOptions::Parse(argc, argv));
}
