// bench_tree: flat vs multi-tier relay topologies at matched total edge
// bandwidth.
//
// Runs the cooperative protocol on one partitioned multi-cache workload
// under three topologies — flat (the paper's one-hop star), 2-tier (one
// relay tier) and 3-tier (two relay tiers) — while holding the *total*
// edge bandwidth constant: the flat budget N x B_C is redistributed over
// every edge of each tree proportionally to the leaves below it
// (exp/multicache.h, RunTopologySweep). Deeper topologies therefore trade
// per-hop capacity for aggregation, and the bench reports what that does
// to total weighted divergence, relay queueing delay, and delivery counts,
// under both FIFO and priority-preserving relay forwarding.
//
// Defaults finish in seconds; --full runs the paper-scale shape. Like the
// other runner benches, --threads=N parallelizes the grid and --json
// output is byte-identical at any thread count.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exp/multicache.h"

namespace besync {
namespace {

int Run(const BenchOptions& options) {
  TopologySweepConfig config;
  config.base.scheduler = SchedulerKind::kCooperative;
  config.base.metric = MetricKind::kValueDeviation;
  config.base.workload.num_sources =
      static_cast<int>(options.flags.GetInt("sources", options.full ? 16 : 8));
  config.base.workload.objects_per_source =
      static_cast<int>(options.flags.GetInt("objects", options.full ? 25 : 10));
  config.base.workload.num_caches =
      static_cast<int>(options.flags.GetInt("caches", options.full ? 16 : 8));
  config.base.workload.interest_pattern = InterestPattern::kPartitionedBySource;
  config.base.workload.rate_lo = 0.0;
  config.base.workload.rate_hi = 1.0;
  config.base.workload.seed = options.seed;
  config.base.harness.warmup = options.flags.GetDouble("warmup", 100.0);
  config.base.harness.measure =
      options.flags.GetDouble("measure", options.full ? 5000.0 : 1000.0);
  // Per-leaf bandwidth of the flat reference; the sweep redistributes the
  // total N x B over each tree's edges.
  config.base.cache_bandwidth_avg = options.flags.GetDouble("bandwidth", 6.0);
  config.base.source_bandwidth_avg = -1.0;
  config.relay_tier_counts = {0, 1, 2};
  config.fanout = static_cast<int>(options.flags.GetInt("fanout", 2));
  config.threads = options.threads;

  std::vector<JobResult> raw;
  const auto points = RunTopologySweep(config, &raw);
  if (!points.ok()) {
    std::fprintf(stderr, "topology sweep failed: %s\n",
                 points.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"topology", "forward", "edges", "leaf_B", "total_div",
                      "per_replica", "delivered", "relay_fwd", "transit_s",
                      "max_store", "util", "wall_ms"});
  for (const TopologySweepPoint& point : *points) {
    const RunResult& r = point.result;
    const double per_replica =
        r.total_replicas > 0
            ? r.total_weighted_divergence / static_cast<double>(r.total_replicas)
            : 0.0;
    table.AddRow({point.relay_tiers == 0
                      ? std::string("flat")
                      : std::to_string(point.relay_tiers + 1) + "-tier",
                  point.relay_tiers == 0 ? std::string("-")
                                         : RelayForwardPolicyToString(point.forward),
                  TablePrinter::Cell(point.num_edges),
                  TablePrinter::Cell(point.leaf_edge_bandwidth),
                  TablePrinter::Cell(r.total_weighted_divergence),
                  TablePrinter::Cell(per_replica),
                  TablePrinter::Cell(r.scheduler.refreshes_delivered),
                  TablePrinter::Cell(r.scheduler.relays_forwarded),
                  TablePrinter::Cell(r.scheduler.relay_transit_delay_mean),
                  TablePrinter::Cell(r.scheduler.max_relay_store),
                  TablePrinter::Cell(r.scheduler.cache_utilization),
                  TablePrinter::Cell(point.wall_seconds * 1e3)});
  }
  EmitTable(table, options);
  EmitJson(raw, options);
  CheckJobsOk(raw);
  return 0;
}

}  // namespace
}  // namespace besync

int main(int argc, char** argv) {
  return besync::Run(besync::BenchOptions::Parse(
      argc, argv,
      {"sources", "objects", "caches", "bandwidth", "fanout", "warmup", "measure"}));
}
