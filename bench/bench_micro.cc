// Microbenchmarks (google-benchmark) for the hot paths of the library:
// priority computation, tracker updates, lazy-heap churn, the threshold
// controller, the CGM allocation solver, ground-truth accounting, and the
// end-to-end simulation tick rate.

#include <benchmark/benchmark.h>

#include "baseline/freq_allocation.h"
#include "core/system.h"
#include "core/threshold.h"
#include "divergence/ground_truth.h"
#include "divergence/metric.h"
#include "divergence/tracker.h"
#include "exp/experiment.h"
#include "priority/priority.h"
#include "priority/priority_queue.h"
#include "sim/simulation.h"
#include "util/random.h"

namespace besync {
namespace {

void BM_RngNextUint64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextUint64());
  }
}
BENCHMARK(BM_RngNextUint64);

void BM_RngExponential(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Exponential(0.5));
  }
}
BENCHMARK(BM_RngExponential);

void BM_TrackerUpdate(benchmark::State& state) {
  ValueDeviationMetric metric;
  DivergenceTracker tracker(&metric);
  tracker.OnRefresh(0.0, 0.0, 0);
  double t = 0.0;
  double value = 0.0;
  int64_t version = 0;
  for (auto _ : state) {
    t += 0.5;
    value += 1.0;
    tracker.OnUpdate(t, value, ++version);
    if (version % 64 == 0) tracker.OnRefresh(t, value, version);
  }
}
BENCHMARK(BM_TrackerUpdate);

void BM_AreaPriority(benchmark::State& state) {
  ValueDeviationMetric metric;
  AreaPriority policy;
  DivergenceTracker tracker(&metric);
  tracker.OnRefresh(0.0, 0.0, 0);
  tracker.OnUpdate(1.0, 3.0, 1);
  PriorityContext context;
  context.tracker = &tracker;
  context.weight = 2.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.Priority(context, 10.0));
  }
}
BENCHMARK(BM_AreaPriority);

void BM_LazyHeapChurn(benchmark::State& state) {
  const int64_t n = state.range(0);
  LazyMaxHeap heap;
  std::vector<uint64_t> epochs(n, 0);
  const EpochFn epoch_fn = [&epochs](ObjectIndex i) { return epochs[i]; };
  Rng rng(2);
  // Steady-state: push (update), occasionally pop (refresh).
  for (auto _ : state) {
    const ObjectIndex i = rng.UniformInt(0, n - 1);
    ++epochs[i];
    heap.Push(rng.NextDouble(), i, epochs[i]);
    if (heap.size() > static_cast<size_t>(4 * n)) heap.Compact(epoch_fn);
    QueueEntry entry;
    if (heap.PopValid(epoch_fn, &entry)) {
      ++epochs[entry.index];
    }
  }
}
BENCHMARK(BM_LazyHeapChurn)->Arg(100)->Arg(10000);

void BM_ThresholdControllerCycle(benchmark::State& state) {
  ThresholdConfig config;
  ThresholdController controller(config, 10.0, 0.0);
  double t = 0.0;
  int i = 0;
  for (auto _ : state) {
    t += 1.0;
    controller.OnRefreshSent(t);
    if (++i % 24 == 0) controller.OnFeedback(t, false);
    benchmark::DoNotOptimize(controller.threshold());
  }
}
BENCHMARK(BM_ThresholdControllerCycle);

void BM_FreshnessAllocation(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(3);
  std::vector<double> lambdas(n);
  for (double& lambda : lambdas) lambda = rng.Uniform(0.01, 1.0);
  for (auto _ : state) {
    auto result = SolveFreshnessAllocation(lambdas, {}, 0.3 * n);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FreshnessAllocation)->Arg(100)->Arg(1000)->Arg(10000);

void BM_GroundTruthEvents(benchmark::State& state) {
  WorkloadConfig config;
  config.num_sources = 10;
  config.objects_per_source = 100;
  config.seed = 4;
  Workload workload = std::move(MakeWorkload(config)).ValueOrDie();
  ValueDeviationMetric metric;
  GroundTruth ground_truth(&workload, &metric);
  ground_truth.Initialize(0.0);
  Rng rng(5);
  double t = 0.0;
  std::vector<int64_t> versions(workload.objects.size(), 0);
  std::vector<double> values(workload.objects.size(), 0.0);
  for (auto _ : state) {
    t += 0.001;
    const ObjectIndex i = rng.UniformInt(0, workload.total_objects() - 1);
    values[i] += rng.Bernoulli(0.5) ? 1.0 : -1.0;
    ground_truth.OnSourceUpdate(i, t, values[i], ++versions[i]);
    if (rng.Bernoulli(0.3)) {
      ground_truth.OnCacheApply(i, t, values[i], versions[i]);
    }
  }
}
BENCHMARK(BM_GroundTruthEvents);

void BM_SimulationEventChurn(benchmark::State& state) {
  Simulation sim;
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    sim.ScheduleAt(t, [](double) {});
    sim.RunUntil(t);
  }
}
BENCHMARK(BM_SimulationEventChurn);

// End-to-end throughput: one full (small) cooperative run per iteration;
// the counter reports simulated object-seconds per wall second.
void BM_CooperativeEndToEnd(benchmark::State& state) {
  const int64_t m = state.range(0);
  for (auto _ : state) {
    ExperimentConfig config;
    config.scheduler = SchedulerKind::kCooperative;
    config.metric = MetricKind::kValueDeviation;
    config.workload.num_sources = static_cast<int>(m);
    config.workload.objects_per_source = 10;
    config.workload.seed = 6;
    config.harness.warmup = 10.0;
    config.harness.measure = 100.0;
    config.cache_bandwidth_avg = 0.3 * m * 10;
    auto result = RunExperiment(config);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * m * 10 * 110);
}
BENCHMARK(BM_CooperativeEndToEnd)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace besync

BENCHMARK_MAIN();
