// Section 8 ablation: priority monitoring techniques. The paper describes
// trigger-based monitoring (recompute priority exactly when an update
// fires) and, when triggers are unavailable or too expensive, sampling-
// based monitoring with midpoint integral attribution, optionally
// scheduling the next sample at the predicted threshold-crossing time.
//
// The paper gives no numbers; the expected qualitative behaviour:
//  - dense sampling approaches the trigger-based divergence,
//  - sparse sampling degrades, and
//  - predictive scheduling recovers part of the sparse-sampling loss by
//    concentrating samples where threshold crossings are imminent.

#include "bench_common.h"
#include "exp/experiment.h"

namespace besync {
namespace {

int Run(const BenchOptions& options) {
  std::cout << "== Section 8 ablation: trigger vs sampling monitors ==\n"
            << "Expect divergence(trigger) <= divergence(sampling), approaching\n"
            << "equality as the sampling interval shrinks; predictive sampling\n"
            << "helps at sparse intervals.\n\n";

  auto base_config = [&](uint64_t seed) {
    ExperimentConfig config;
    config.scheduler = SchedulerKind::kCooperative;
    config.metric = MetricKind::kValueDeviation;
    config.workload.num_sources = options.full ? 20 : 8;
    config.workload.objects_per_source = 20;
    config.workload.rate_lo = 0.02;
    config.workload.rate_hi = 0.5;
    config.workload.seed = seed;
    config.harness.warmup = 200.0;
    config.harness.measure = options.full ? 4000.0 : 1500.0;
    config.cache_bandwidth_avg =
        0.2 * config.workload.num_sources * config.workload.objects_per_source;
    return config;
  };

  TablePrinter table({"monitor", "interval", "predictive", "divergence",
                      "refreshes"});

  {
    ExperimentConfig config = base_config(options.seed + 3);
    config.monitor = MonitorMode::kTrigger;
    auto result = RunExperiment(config);
    BESYNC_CHECK_OK(result.status());
    table.AddRow({"trigger", "-", "-",
                  TablePrinter::Cell(result->per_object_weighted),
                  TablePrinter::Cell(result->scheduler.refreshes_delivered)});
  }

  const std::vector<double> intervals =
      options.full ? std::vector<double>{1.0, 2.0, 5.0, 10.0, 20.0, 40.0}
                   : std::vector<double>{2.0, 5.0, 20.0};
  for (double interval : intervals) {
    for (const bool predictive : {false, true}) {
      ExperimentConfig config = base_config(options.seed + 3);
      config.monitor = MonitorMode::kSampling;
      config.sampling_interval = interval;
      config.predictive_sampling = predictive;
      auto result = RunExperiment(config);
      BESYNC_CHECK_OK(result.status());
      table.AddRow({"sampling", TablePrinter::Cell(interval),
                    predictive ? "yes" : "no",
                    TablePrinter::Cell(result->per_object_weighted),
                    TablePrinter::Cell(result->scheduler.refreshes_delivered)});
    }
  }
  EmitTable(table, options);
  return 0;
}

}  // namespace
}  // namespace besync

int main(int argc, char** argv) {
  return besync::Run(besync::BenchOptions::Parse(argc, argv));
}
