// besync_sweep: the general policy x topology x bandwidth grid runner.
//
// Runs the full cross product of
//   --schedulers   (cooperative, ideal-cooperative, ideal-cache-based,
//                   cgm1, cgm2, round-robin)
//   --policies     (area, naive, poisson-staleness, poisson-lag, bound,
//                   area-history)
//   --caches       (cache counts; N > 1 uses the partitioned interest map)
//   --bandwidths   (per-cache average B_C, messages/second)
//   --loss_rates   (cache-link loss probabilities; cooperative only)
// on the parallel experiment runner (--threads=N workers, 0 = all cores),
// printing a summary table and optionally dumping machine-readable output
// (--json PATH, --csv PATH). The default grid is 1 x 3 x 3 x 4 x 2 = 72
// configurations sized to finish in seconds.
//
// Deterministic by construction: each job builds its own workload from a
// seed derived only from (--seed, cache count) — jobs differing in
// scheduler, policy, bandwidth, or loss rate therefore score identical
// update streams, and the JSON output is byte-identical at any --threads
// (timings are excluded from it). See exp/runner.h for the workload-sharing
// hazard that shapes this design.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exp/runner.h"
#include "util/thread_pool.h"

namespace besync {
namespace {

std::vector<std::string> SplitList(const std::string& text) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t comma = text.find(',', start);
    const size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > start) parts.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

std::vector<double> ParseDoubleList(const std::string& flag, const std::string& text) {
  std::vector<double> values;
  for (const std::string& part : SplitList(text)) {
    char* end = nullptr;
    const double value = std::strtod(part.c_str(), &end);
    if (end == part.c_str() || *end != '\0') {
      std::fprintf(stderr, "--%s: not a number: '%s'\n", flag.c_str(), part.c_str());
      std::exit(2);
    }
    values.push_back(value);
  }
  if (values.empty()) {
    std::fprintf(stderr, "--%s: empty list\n", flag.c_str());
    std::exit(2);
  }
  return values;
}

std::vector<int> ParseIntList(const std::string& flag, const std::string& text) {
  std::vector<int> values;
  for (double value : ParseDoubleList(flag, text)) values.push_back(static_cast<int>(value));
  return values;
}

SchedulerKind ParseScheduler(const std::string& name) {
  static const SchedulerKind kinds[] = {
      SchedulerKind::kCooperative,    SchedulerKind::kIdealCooperative,
      SchedulerKind::kIdealCacheBased, SchedulerKind::kCGM1,
      SchedulerKind::kCGM2,           SchedulerKind::kRoundRobin};
  for (SchedulerKind kind : kinds) {
    if (SchedulerKindToString(kind) == name) return kind;
  }
  std::fprintf(stderr, "--schedulers: unknown scheduler '%s'\n", name.c_str());
  std::exit(2);
}

PolicyKind ParsePolicy(const std::string& name) {
  static const PolicyKind kinds[] = {PolicyKind::kArea,      PolicyKind::kNaive,
                                     PolicyKind::kPoissonStaleness,
                                     PolicyKind::kPoissonLag, PolicyKind::kBound,
                                     PolicyKind::kAreaHistory};
  for (PolicyKind kind : kinds) {
    if (PolicyKindToString(kind) == name) return kind;
  }
  std::fprintf(stderr, "--policies: unknown policy '%s'\n", name.c_str());
  std::exit(2);
}

/// Only the cooperative schedulers consult the priority policy; for the
/// rest, sweeping policies would duplicate identical runs.
bool PolicySensitive(SchedulerKind kind) {
  return kind == SchedulerKind::kCooperative ||
         kind == SchedulerKind::kIdealCooperative;
}

/// Cache-link loss is modeled only by the real cooperative protocol (see
/// MakeScheduler); other schedulers would re-run identical simulations and
/// emit JSON rows misattributing the unchanged result to a loss rate.
bool LossSensitive(SchedulerKind kind) { return kind == SchedulerKind::kCooperative; }

int Run(const BenchOptions& options) {
  std::vector<SchedulerKind> schedulers;
  for (const std::string& name :
       SplitList(options.flags.GetString("schedulers", "cooperative"))) {
    schedulers.push_back(ParseScheduler(name));
  }
  std::vector<PolicyKind> policies;
  for (const std::string& name :
       SplitList(options.flags.GetString("policies", "area,naive,bound"))) {
    policies.push_back(ParsePolicy(name));
  }
  const std::vector<int> cache_counts =
      ParseIntList("caches", options.flags.GetString("caches", "1,2,4"));
  const std::vector<double> bandwidths = ParseDoubleList(
      "bandwidths", options.flags.GetString("bandwidths", "8,16,32,64"));
  const std::vector<double> loss_rates =
      ParseDoubleList("loss_rates", options.flags.GetString("loss_rates", "0,0.05"));

  ExperimentConfig base;
  base.metric = MetricKind::kValueDeviation;
  base.workload.num_sources =
      static_cast<int>(options.flags.GetInt("sources", options.full ? 32 : 8));
  base.workload.objects_per_source =
      static_cast<int>(options.flags.GetInt("objects", options.full ? 25 : 10));
  base.workload.rate_lo = 0.0;
  base.workload.rate_hi = 1.0;
  base.harness.warmup = options.flags.GetDouble("warmup", 100.0);
  base.harness.measure =
      options.flags.GetDouble("measure", options.full ? 5000.0 : 1000.0);
  base.source_bandwidth_avg = -1.0;  // unconstrained; the grid varies B_C

  std::vector<ExperimentJob> jobs;
  int skipped = 0;
  for (SchedulerKind scheduler : schedulers) {
    const int num_policies =
        PolicySensitive(scheduler) ? static_cast<int>(policies.size()) : 1;
    for (int p = 0; p < num_policies; ++p) {
      for (int num_caches : cache_counts) {
        // Multi-cache topologies are a cooperative-protocol feature; the
        // baseline schedulers model the paper's single-cache star only.
        if (num_caches > 1 && scheduler != SchedulerKind::kCooperative) {
          ++skipped;
          continue;
        }
        for (double bandwidth : bandwidths) {
          const int num_losses =
              LossSensitive(scheduler) ? static_cast<int>(loss_rates.size()) : 1;
          for (int l = 0; l < num_losses; ++l) {
            const double loss_rate = LossSensitive(scheduler) ? loss_rates[l] : 0.0;
            ExperimentJob job;
            job.config = base;
            job.config.scheduler = scheduler;
            job.config.policy = policies[p];
            job.config.workload.num_caches = num_caches;
            job.config.workload.interest_pattern =
                num_caches == 1 ? InterestPattern::kSingleCache
                                : InterestPattern::kPartitionedBySource;
            // Same topology => same workload stream: scheduler/policy/
            // bandwidth/loss points are scored on identical update streams.
            job.config.workload.seed =
                DeriveJobSeed(options.seed, static_cast<uint64_t>(num_caches));
            job.config.cache_bandwidth_avg = bandwidth;
            job.config.loss_rate = loss_rate;
            job.name = SchedulerKindToString(scheduler) + "," +
                       (PolicySensitive(scheduler)
                            ? PolicyKindToString(policies[p])
                            : std::string("-")) +
                       ",N=" + std::to_string(num_caches) +
                       ",B=" + TablePrinter::Cell(bandwidth) + ",loss=" +
                       (LossSensitive(scheduler) ? TablePrinter::Cell(loss_rate)
                                                 : std::string("-"));
            jobs.push_back(std::move(job));
          }
        }
      }
    }
  }

  std::fprintf(stderr, "besync_sweep: %d configurations on %d thread(s)%s\n",
               static_cast<int>(jobs.size()),
               options.threads <= 0 ? ThreadPool::HardwareThreads() : options.threads,
               skipped > 0 ? " (multi-cache baseline combos skipped)" : "");

  const std::vector<JobResult> results = RunExperiments(jobs, options.runner("sweep"));

  EmitTable(ResultsTable(results), options);
  EmitJson(results, options);
  int failures = 0;
  for (const JobResult& job : results) {
    if (!job.status.ok()) {
      std::fprintf(stderr, "job '%s' failed: %s\n", job.name.c_str(),
                   job.status.ToString().c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace besync

int main(int argc, char** argv) {
  return besync::Run(besync::BenchOptions::Parse(
      argc, argv,
      {"schedulers", "policies", "caches", "bandwidths", "loss_rates", "sources",
       "objects", "warmup", "measure"}));
}
