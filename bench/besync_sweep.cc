// besync_sweep: the general policy x topology x bandwidth grid runner.
//
// Runs the full cross product of
//   --schedulers   (cooperative, ideal-cooperative, ideal-cache-based,
//                   cgm1, cgm2, round-robin)
//   --policies     (area, naive, poisson-staleness, poisson-lag, bound,
//                   area-history)
//   --caches       (cache counts; N > 1 uses the partitioned interest map)
//   --bandwidths   (per-cache average B_C, messages/second)
//   --loss_rates   (cache-link loss probabilities; cooperative only)
// on the parallel experiment runner (--threads=N workers, 0 = all cores),
// printing a summary table and optionally dumping machine-readable output
// (--json PATH; --csv PATH writes the full-precision deterministic
// ResultsCsv grid, not the rounded display table). The default grid is
// 1 x 3 x 3 x 4 x 2 = 72 configurations sized to finish in seconds.
//
// --topology=tree routes every cooperative job's refreshes through a
// store-and-forward relay tree (--depth relay tiers of --fanout children;
// cooperative-only, like multi-cache). --relay_factor sizes each relay
// edge at factor x (leaves below) x B_C — 1 matches subtree demand, < 1
// oversubscribes, 0 leaves relays pass-through (which reproduces the flat
// numbers exactly; see tests/topology_test.cc).
//
// --read_rate=R adds per-cache client read streams (R Poisson reads/second
// over a rotated Zipf popularity law; cooperative-only), --capacity=K
// bounds each cache at K resident objects with --eviction={lru,lfu,
// divergence} choosing the victim, and misses trigger pull fetches that
// share link bandwidth with pushed refreshes (src/read/). Read-enabled
// grids gain the read columns/fields in --csv and --json output;
// read-free grids keep the historical bytes exactly.
//
// --workload selects the update streams the grid is scored on:
//   synthetic (default) — each job rebuilds a Poisson random-walk workload
//     from a seed derived only from (--seed, cache count), so jobs
//     differing in scheduler, policy, bandwidth, or loss rate score
//     identical update streams (--sources/--objects shape it);
//   buoy — the TAO wind-buoy trace stand-in (data/buoy_trace.h) is
//     generated once and every job runs a private CloneWorkload deep copy
//     (--buoys sets the buoy count; single-cache only, time unit switches
//     to the paper's 60 s ticks with bandwidth in messages/second).
// Either way the JSON output is byte-identical at any --threads (timings
// are excluded from it). See exp/runner.h for the workload-sharing hazard
// that shapes both paths.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "data/buoy_trace.h"
#include "exp/runner.h"
#include "util/thread_pool.h"

namespace besync {
namespace {

SchedulerKind ParseScheduler(const std::string& name) {
  static const SchedulerKind kinds[] = {
      SchedulerKind::kCooperative,    SchedulerKind::kIdealCooperative,
      SchedulerKind::kIdealCacheBased, SchedulerKind::kCGM1,
      SchedulerKind::kCGM2,           SchedulerKind::kRoundRobin};
  for (SchedulerKind kind : kinds) {
    if (SchedulerKindToString(kind) == name) return kind;
  }
  std::fprintf(stderr, "--schedulers: unknown scheduler '%s'\n", name.c_str());
  std::exit(2);
}

PolicyKind ParsePolicy(const std::string& name) {
  static const PolicyKind kinds[] = {PolicyKind::kArea,      PolicyKind::kNaive,
                                     PolicyKind::kPoissonStaleness,
                                     PolicyKind::kPoissonLag, PolicyKind::kBound,
                                     PolicyKind::kAreaHistory};
  for (PolicyKind kind : kinds) {
    if (PolicyKindToString(kind) == name) return kind;
  }
  std::fprintf(stderr, "--policies: unknown policy '%s'\n", name.c_str());
  std::exit(2);
}

/// Only the cooperative schedulers consult the priority policy; for the
/// rest, sweeping policies would duplicate identical runs.
bool PolicySensitive(SchedulerKind kind) {
  return kind == SchedulerKind::kCooperative ||
         kind == SchedulerKind::kIdealCooperative;
}

/// Cache-link loss is modeled only by the real cooperative protocol (see
/// MakeScheduler); other schedulers would re-run identical simulations and
/// emit JSON rows misattributing the unchanged result to a loss rate.
bool LossSensitive(SchedulerKind kind) { return kind == SchedulerKind::kCooperative; }

int Run(const BenchOptions& options) {
  const std::string workload_mode = options.flags.GetString("workload", "synthetic");
  const bool buoy = workload_mode == "buoy";
  if (!buoy && workload_mode != "synthetic") {
    std::fprintf(stderr, "--workload: unknown mode '%s' (synthetic, buoy)\n",
                 workload_mode.c_str());
    std::exit(2);
  }
  const std::string topology_mode = options.flags.GetString("topology", "flat");
  const bool tree = topology_mode == "tree";
  if (!tree && topology_mode != "flat") {
    std::fprintf(stderr, "--topology: unknown mode '%s' (flat, tree)\n",
                 topology_mode.c_str());
    std::exit(2);
  }
  const int relay_tiers = static_cast<int>(options.flags.GetInt("depth", 1));
  const int relay_fanout = static_cast<int>(options.flags.GetInt("fanout", 2));
  const double relay_factor = options.flags.GetDouble("relay_factor", 1.0);
  if (tree && (relay_tiers < 1 || relay_fanout < 1 || relay_factor < 0.0)) {
    std::fprintf(stderr,
                 "--topology=tree needs --depth >= 1, --fanout >= 1, "
                 "--relay_factor >= 0\n");
    std::exit(2);
  }
  if (!tree) {
    for (const char* flag : {"depth", "fanout", "relay_factor"}) {
      if (options.flags.Has(flag)) {
        std::fprintf(stderr, "--%s requires --topology=tree\n", flag);
        std::exit(2);
      }
    }
  }
  if (tree && buoy) {
    std::fprintf(stderr,
                 "--topology=tree models multi-cache trees; --workload=buoy is "
                 "single-cache flat only\n");
    std::exit(2);
  }

  // Read-path knobs (cooperative-only, like multi-cache and trees): client
  // read streams at --read_rate reads/second per cache, optional finite
  // --capacity with --eviction policy (lru, lfu, divergence).
  const double read_rate = options.flags.GetDouble("read_rate", 0.0);
  const int64_t capacity = options.flags.GetInt("capacity", 0);
  if (read_rate < 0.0 || capacity < 0) {
    std::fprintf(stderr, "--read_rate and --capacity must be >= 0\n");
    std::exit(2);
  }
  if (options.flags.Has("eviction") && capacity == 0) {
    std::fprintf(stderr,
                 "--eviction selects the victim of a *finite* cache; it needs "
                 "--capacity > 0\n");
    std::exit(2);
  }
  const EvictionPolicy eviction =
      ParseEvictionPolicy("eviction", options.flags.GetString("eviction", "lru"));
  // Finite capacity counts as a read-path feature too: baselines have no
  // store to enforce it, so running them would mislabel unbounded results.
  const bool reads = read_rate > 0.0 || capacity > 0;

  // Observability outputs (--timeseries_out / --trace_out; bench_common.h).
  // Applied to the cooperative jobs of the grid only.
  const ObsBenchOptions obs = ObsFromFlags(options);

  std::vector<SchedulerKind> schedulers;
  for (const std::string& name :
       SplitList(options.flags.GetString("schedulers", "cooperative"))) {
    schedulers.push_back(ParseScheduler(name));
  }
  std::vector<PolicyKind> policies;
  for (const std::string& name :
       SplitList(options.flags.GetString("policies", "area,naive,bound"))) {
    policies.push_back(ParsePolicy(name));
  }
  const std::vector<int> cache_counts = ParseIntList(
      "caches", options.flags.GetString("caches", buoy ? "1" : "1,2,4"));
  // Buoy-mode bandwidths default to the Figure-5 regime: the trace updates
  // every 10 minutes, so sensible budgets are fractions of a message per
  // second (0.05/0.2/0.8 msgs/s = 3/12/48 msgs/min against the paper's
  // 1-80 msgs/min axis).
  const std::vector<double> bandwidths = ParseDoubleList(
      "bandwidths",
      options.flags.GetString("bandwidths", buoy ? "0.05,0.2,0.8" : "8,16,32,64"));
  const std::vector<double> loss_rates =
      ParseDoubleList("loss_rates", options.flags.GetString("loss_rates", "0,0.05"));
  if (buoy) {
    for (int num_caches : cache_counts) {
      if (num_caches != 1) {
        std::fprintf(stderr,
                     "--workload=buoy models the paper's single-cache star; "
                     "--caches must be 1, got %d\n",
                     num_caches);
        std::exit(2);
      }
    }
    // The synthetic-shape flags have no effect on the trace workload;
    // reject them so a misadapted invocation fails loudly instead of
    // silently sweeping the default trace.
    for (const char* flag : {"sources", "objects"}) {
      if (options.flags.Has(flag)) {
        std::fprintf(stderr,
                     "--%s shapes the synthetic workload only; use --buoys "
                     "with --workload=buoy\n",
                     flag);
        std::exit(2);
      }
    }
  }

  ExperimentConfig base;
  base.metric = MetricKind::kValueDeviation;
  if (buoy) {
    // Figure-5 timing: 60 s ticks, day-scale warm-up and measurement.
    base.harness.tick_length = 60.0;
    base.harness.warmup = options.flags.GetDouble("warmup", 86400.0);
    base.harness.measure = options.flags.GetDouble(
        "measure", options.full ? 6.0 * 86400.0 : 86400.0);
  } else {
    base.workload.num_sources =
        static_cast<int>(options.flags.GetInt("sources", options.full ? 32 : 8));
    base.workload.objects_per_source =
        static_cast<int>(options.flags.GetInt("objects", options.full ? 25 : 10));
    base.workload.rate_lo = 0.0;
    base.workload.rate_hi = 1.0;
    base.harness.warmup = options.flags.GetDouble("warmup", 100.0);
    base.harness.measure =
        options.flags.GetDouble("measure", options.full ? 5000.0 : 1000.0);
  }
  base.source_bandwidth_avg = -1.0;  // unconstrained; the grid varies B_C
  base.workload.read.read_rate = read_rate;
  base.workload.read.capacity = capacity;
  base.workload.read.eviction = eviction;

  // The buoy workload is generated once; every job gets a private clone.
  Workload buoy_workload;
  if (buoy) {
    BuoyTraceConfig trace_config;
    trace_config.seed = 2000 + options.seed;
    trace_config.num_buoys =
        static_cast<int>(options.flags.GetInt("buoys", options.full ? 40 : 8));
    trace_config.duration = base.harness.warmup + base.harness.measure;
    buoy_workload = std::move(MakeBuoyWorkload(trace_config)).ValueOrDie();
    base.workload.seed = trace_config.seed;  // JSON metadata only
    base.workload.num_caches = 1;
    // The clone runner stamps each job's read config from the base
    // workload, so read knobs apply to the trace workload too.
    buoy_workload.read = base.workload.read;
  }

  std::vector<ExperimentJob> jobs;
  int skipped = 0;
  for (SchedulerKind scheduler : schedulers) {
    const int num_policies =
        PolicySensitive(scheduler) ? static_cast<int>(policies.size()) : 1;
    for (int p = 0; p < num_policies; ++p) {
      for (int num_caches : cache_counts) {
        // Multi-cache, relay-tree and client-read topologies are
        // cooperative-protocol features; the baseline schedulers model the
        // paper's read-free single-cache one-hop star only.
        if ((num_caches > 1 || tree || reads) &&
            scheduler != SchedulerKind::kCooperative) {
          ++skipped;
          continue;
        }
        for (double bandwidth : bandwidths) {
          const int num_losses =
              LossSensitive(scheduler) ? static_cast<int>(loss_rates.size()) : 1;
          for (int l = 0; l < num_losses; ++l) {
            const double loss_rate = LossSensitive(scheduler) ? loss_rates[l] : 0.0;
            ExperimentJob job;
            job.config = base;
            job.config.scheduler = scheduler;
            job.config.policy = policies[p];
            if (!buoy) {
              job.config.workload.num_caches = num_caches;
              job.config.workload.interest_pattern =
                  num_caches == 1 ? InterestPattern::kSingleCache
                                  : InterestPattern::kPartitionedBySource;
              // Same topology => same workload stream: scheduler/policy/
              // bandwidth/loss points are scored on identical update
              // streams. (Buoy mode shares one clone-fanned workload, so
              // its jobs keep the base trace seed.)
              job.config.workload.seed =
                  DeriveJobSeed(options.seed, static_cast<uint64_t>(num_caches));
              if (tree) {
                // Same seed and interest map as the flat grid point: tree
                // jobs score identical update streams, so topology effects
                // are directly comparable against flat runs.
                job.config.workload.relay_tiers = relay_tiers;
                job.config.workload.relay_fanout = relay_fanout;
                job.config.workload.relay_bandwidth_factor = relay_factor;
              }
            }
            job.config.cache_bandwidth_avg = bandwidth;
            job.config.loss_rate = loss_rate;
            // Cooperative jobs only: observability is not instrumented in
            // the baselines (enabling it there is an InvalidArgument).
            if (scheduler == SchedulerKind::kCooperative) {
              job.config.obs = obs.config;
            }
            job.name = SchedulerKindToString(scheduler) + "," +
                       (PolicySensitive(scheduler)
                            ? PolicyKindToString(policies[p])
                            : std::string("-")) +
                       ",N=" + std::to_string(num_caches) +
                       ",B=" + TablePrinter::Cell(bandwidth) + ",loss=" +
                       (LossSensitive(scheduler) ? TablePrinter::Cell(loss_rate)
                                                 : std::string("-"));
            if (tree) {
              job.name += ",tree(d=" + std::to_string(relay_tiers) +
                          ",f=" + std::to_string(relay_fanout) + ")";
            }
            jobs.push_back(std::move(job));
          }
        }
      }
    }
  }

  std::fprintf(stderr, "besync_sweep: %d configurations on %d thread(s)%s\n",
               static_cast<int>(jobs.size()),
               options.threads <= 0 ? ThreadPool::HardwareThreads() : options.threads,
               skipped > 0 ? " (multi-cache baseline combos skipped)" : "");

  const std::vector<JobResult> results =
      buoy ? RunExperimentsOnWorkload(buoy_workload, jobs, options.runner("sweep"))
           : RunExperiments(jobs, options.runner("sweep"));

  // The printed table keeps its rounded display cells; --csv gets the
  // full-precision deterministic grid instead (ResultsCsv: shortest
  // round-trip numbers, no wall-clock column — byte-identical at any
  // --threads, like the JSON).
  BenchOptions table_options = options;
  table_options.csv.clear();
  EmitTable(ResultsTable(results), table_options);
  if (!options.csv.empty()) {
    const Status status = ResultsCsv(results).WriteCsv(options.csv);
    if (!status.ok()) {
      std::fprintf(stderr, "CSV write failed: %s\n", status.ToString().c_str());
      std::exit(1);
    }
    std::fprintf(stderr, "wrote %s\n", options.csv.c_str());
  }
  EmitJson(results, options);
  EmitObsOutputs(results, obs);
  int failures = 0;
  for (const JobResult& job : results) {
    if (!job.status.ok()) {
      std::fprintf(stderr, "job '%s' failed: %s\n", job.name.c_str(),
                   job.status.ToString().c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace besync

int main(int argc, char** argv) {
  std::vector<std::string> flags{
      "schedulers", "policies",     "caches",   "bandwidths", "loss_rates",
      "sources",    "objects",      "warmup",   "measure",    "workload",
      "buoys",      "topology",     "depth",    "fanout",     "relay_factor",
      "read_rate",  "capacity",     "eviction"};
  for (std::string& flag : besync::ObsFlagNames()) flags.push_back(std::move(flag));
  return besync::Run(besync::BenchOptions::Parse(argc, argv, std::move(flags)));
}
