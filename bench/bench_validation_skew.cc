// Section 4.3, second validation experiment: n = 100 objects at one source;
// a randomly-selected half weighted 10 (rest 1); an independently-selected
// half updated with probability 0.01 per second (rest every second);
// bandwidth 10 refreshes/second. The paper reports that the simple
// weighted-divergence priority increases overall time-averaged divergence by
//   +64% (staleness), +74% (lag), +84% (value deviation)
// compared with the paper's area priority.
//
// This binary reproduces the comparison and prints the percentage increase
// per metric, averaged over several seeds.

#include "bench_common.h"
#include "exp/experiment.h"
#include "util/stats.h"

namespace besync {
namespace {

int Run(const BenchOptions& options) {
  std::cout << "== Section 4.3 validation (skewed parameters) ==\n"
            << "Paper result: naive priority increases divergence by 64% / 74% /\n"
            << "84% for staleness / lag / value deviation.\n\n";

  const int seeds = options.full ? 9 : 5;
  const double measure = options.full ? 5000.0 : 2000.0;

  struct PaperRow {
    MetricKind metric;
    double paper_increase_pct;
  };
  const PaperRow rows[] = {{MetricKind::kStaleness, 64.0},
                           {MetricKind::kLag, 74.0},
                           {MetricKind::kValueDeviation, 84.0}};

  TablePrinter table(
      {"metric", "area", "naive", "increase_%", "paper_increase_%"});
  for (const PaperRow& row : rows) {
    RunningStat area_stat;
    RunningStat naive_stat;
    for (int s = 0; s < seeds; ++s) {
      ExperimentConfig config;
      config.scheduler = SchedulerKind::kIdealCooperative;
      config.metric = row.metric;
      config.workload.num_sources = 1;
      config.workload.objects_per_source = 100;
      config.workload.update_model = WorkloadConfig::UpdateModel::kBernoulli;
      config.workload.rate_distribution = RateDistribution::kHalfSlowHalfFast;
      config.workload.slow_rate = 0.01;
      config.workload.fast_rate = 1.0;
      config.workload.weight_scheme = WeightScheme::kHalfHeavy;
      config.workload.heavy_weight = 10.0;
      config.workload.seed = options.seed + 101 * s;
      config.harness.warmup = 200.0;
      config.harness.measure = measure;
      config.cache_bandwidth_avg = 10.0;

      config.policy = PolicyKind::kArea;
      auto area = RunExperiment(config);
      BESYNC_CHECK_OK(area.status());
      config.policy = PolicyKind::kNaive;
      auto naive = RunExperiment(config);
      BESYNC_CHECK_OK(naive.status());
      area_stat.Add(area->total_weighted_divergence);
      naive_stat.Add(naive->total_weighted_divergence);
    }
    const double increase =
        100.0 * (naive_stat.mean() / area_stat.mean() - 1.0);
    table.AddRow({MetricKindToString(row.metric),
                  TablePrinter::Cell(area_stat.mean() / 100.0),
                  TablePrinter::Cell(naive_stat.mean() / 100.0),
                  TablePrinter::Cell(increase),
                  TablePrinter::Cell(row.paper_increase_pct)});
  }
  EmitTable(table, options);
  return 0;
}

}  // namespace
}  // namespace besync

int main(int argc, char** argv) {
  return besync::Run(besync::BenchOptions::Parse(argc, argv));
}
