// Section 10.1 ablation: non-uniform refresh costs. Half the objects cost
// `large_cost` bandwidth units to refresh (think large documents); the
// paper proposes folding cost into the weight as an inverse factor, and
// flags the open question of budget management when the top-priority object
// is unaffordable (we start its transmission and let it span ticks).
//
// Expected: cost-aware prioritization beats cost-blind prioritization on
// weighted divergence, with the advantage growing with cost skew.

#include "bench_common.h"
#include "exp/experiment.h"

namespace besync {
namespace {

int Run(const BenchOptions& options) {
  std::cout << "== Section 10.1 ablation: non-uniform refresh costs ==\n"
            << "aware = priority weights divided by cost; blind = cost ignored\n"
            << "in the priority (but still charged on the wire).\n\n";

  const std::vector<int64_t> costs = options.full
                                         ? std::vector<int64_t>{1, 2, 4, 8, 16}
                                         : std::vector<int64_t>{1, 4, 8};

  TablePrinter table({"scheduler", "large_cost", "aware_div", "blind_div",
                      "blind/aware"});
  for (SchedulerKind kind :
       {SchedulerKind::kIdealCooperative, SchedulerKind::kCooperative}) {
    for (int64_t large_cost : costs) {
      ExperimentConfig config;
      config.scheduler = kind;
      config.metric = MetricKind::kValueDeviation;
      config.workload.num_sources = options.full ? 20 : 10;
      config.workload.objects_per_source = 20;
      config.workload.rate_lo = 0.02;
      config.workload.rate_hi = 1.0;
      config.workload.cost_scheme =
          large_cost > 1 ? CostScheme::kHalfLarge : CostScheme::kUniform;
      config.workload.large_cost = large_cost;
      config.workload.seed = options.seed + static_cast<uint64_t>(large_cost);
      config.harness.warmup = 200.0;
      config.harness.measure = options.full ? 4000.0 : 1500.0;
      config.cache_bandwidth_avg =
          0.3 * config.workload.num_sources * config.workload.objects_per_source;

      config.cost_aware_priority = true;
      auto aware = RunExperiment(config);
      BESYNC_CHECK_OK(aware.status());
      config.cost_aware_priority = false;
      auto blind = RunExperiment(config);
      BESYNC_CHECK_OK(blind.status());

      table.AddRow({SchedulerKindToString(kind), TablePrinter::Cell(large_cost),
                    TablePrinter::Cell(aware->per_object_weighted),
                    TablePrinter::Cell(blind->per_object_weighted),
                    TablePrinter::Cell(blind->per_object_weighted /
                                       aware->per_object_weighted)});
    }
  }
  EmitTable(table, options);
  return 0;
}

}  // namespace
}  // namespace besync

int main(int argc, char** argv) {
  return besync::Run(besync::BenchOptions::Parse(argc, argv));
}
