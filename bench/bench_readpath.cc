// bench_readpath: the client read path under pressure — hit rate,
// read-time staleness percentiles, and push-vs-pull bandwidth contention
// across read rates x cache capacities x eviction policies.
//
// Runs the cooperative protocol on one partitioned multi-cache workload
// while sweeping the read-path axes (exp/read_sweep.h): per-cache Poisson
// read streams over a rotated Zipf popularity law, finite cache capacities
// with LRU / LFU / divergence-aware eviction, and miss-triggered pulls
// that consume the same per-edge link budgets as pushed refreshes. The
// unbounded-capacity rows are the control: every read hits, no pull is
// ever sent, and total divergence matches the write-only engine exactly.
//
// Defaults finish in seconds; --full runs a larger shape. Like the other
// runner benches, --threads=N parallelizes the grid and --json output is
// byte-identical at any thread count (tools/record_bench.py records it as
// the BENCH_readpath.json trajectory baseline).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exp/read_sweep.h"

namespace besync {
namespace {

int Run(const BenchOptions& options) {
  ReadSweepConfig config;
  config.base.scheduler = SchedulerKind::kCooperative;
  config.base.metric = MetricKind::kValueDeviation;
  config.base.workload.num_sources =
      static_cast<int>(options.flags.GetInt("sources", options.full ? 16 : 8));
  config.base.workload.objects_per_source =
      static_cast<int>(options.flags.GetInt("objects", options.full ? 25 : 10));
  const int num_caches =
      static_cast<int>(options.flags.GetInt("caches", options.full ? 4 : 2));
  config.base.workload.num_caches = num_caches;
  config.base.workload.interest_pattern =
      num_caches == 1 ? InterestPattern::kSingleCache
                      : InterestPattern::kPartitionedBySource;
  config.base.workload.rate_lo = 0.0;
  config.base.workload.rate_hi = 1.0;
  config.base.workload.seed = options.seed;
  config.base.workload.read.zipf_exponent = options.flags.GetDouble("zipf", 0.8);
  config.base.harness.warmup = options.flags.GetDouble("warmup", 100.0);
  config.base.harness.measure =
      options.flags.GetDouble("measure", options.full ? 5000.0 : 1000.0);
  config.base.cache_bandwidth_avg = options.flags.GetDouble("bandwidth", 8.0);
  config.base.source_bandwidth_avg = -1.0;
  config.threads = options.threads;

  if (options.flags.Has("read_rates")) {
    config.read_rates =
        ParseDoubleList("read_rates", options.flags.GetString("read_rates", ""));
  }
  if (options.flags.Has("capacities")) {
    config.capacities.clear();
    for (int value :
         ParseIntList("capacities", options.flags.GetString("capacities", ""))) {
      config.capacities.push_back(value);
    }
  } else {
    // Default capacities scale with the per-cache replica count so the
    // pressure regimes (none / mild / hot-set-only) survive reshaping.
    // Clamped to >= 1 and deduplicated: tiny shapes must not degenerate a
    // finite point into a second unbounded row (duplicate grid names).
    const int64_t per_cache =
        static_cast<int64_t>(config.base.workload.num_sources) *
        config.base.workload.objects_per_source / std::max(num_caches, 1);
    config.capacities = {0};
    for (int64_t capacity : {per_cache / 2, per_cache / 8}) {
      capacity = std::max<int64_t>(capacity, 1);
      if (std::find(config.capacities.begin(), config.capacities.end(), capacity) ==
          config.capacities.end()) {
        config.capacities.push_back(capacity);
      }
    }
  }
  if (options.flags.Has("evictions")) {
    config.evictions.clear();
    for (const std::string& name :
         SplitList(options.flags.GetString("evictions", ""))) {
      config.evictions.push_back(ParseEvictionPolicy("evictions", name));
    }
  }

  std::vector<JobResult> raw;
  const auto points = RunReadSweep(config, &raw);
  if (!points.ok()) {
    std::fprintf(stderr, "read sweep failed: %s\n", points.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"rate", "capacity", "eviction", "reads", "hit_rate",
                      "stale_p50", "stale_p95", "stale_p99", "miss_lat_s",
                      "pull_share", "evictions", "total_div", "wall_ms"});
  for (const ReadSweepPoint& point : *points) {
    const SchedulerStats& s = point.result.scheduler;
    table.AddRow({TablePrinter::Cell(point.read_rate),
                  point.capacity <= 0 ? std::string("inf")
                                      : TablePrinter::Cell(point.capacity),
                  point.capacity <= 0 ? std::string("-")
                                      : EvictionPolicyToString(point.eviction),
                  TablePrinter::Cell(s.reads_total),
                  TablePrinter::Cell(point.hit_rate()),
                  TablePrinter::Cell(s.read_staleness_p50),
                  TablePrinter::Cell(s.read_staleness_p95),
                  TablePrinter::Cell(s.read_staleness_p99),
                  TablePrinter::Cell(s.read_miss_latency_mean),
                  TablePrinter::Cell(s.pull_bandwidth_share),
                  TablePrinter::Cell(s.cache_evictions),
                  TablePrinter::Cell(point.result.total_weighted_divergence),
                  TablePrinter::Cell(point.wall_seconds * 1e3)});
  }
  EmitTable(table, options);
  EmitJson(raw, options);
  CheckJobsOk(raw);
  return 0;
}

}  // namespace
}  // namespace besync

int main(int argc, char** argv) {
  return besync::Run(besync::BenchOptions::Parse(
      argc, argv,
      {"sources", "objects", "caches", "bandwidth", "zipf", "read_rates",
       "capacities", "evictions", "warmup", "measure"}));
}
