// Section 10.1 ablation: packaging several refreshes into one message. A
// batch of k objects costs one bandwidth unit (per-message overhead
// dominates), but partial batches wait for company, "causing some refreshes
// to be delayed artificially". The paper poses the trade-off as future
// work; this bench maps it.
//
// Expected: under tight bandwidth, batching wins big (k-fold effective
// capacity); with ample bandwidth, the artificial delay makes large batches
// pointless or mildly harmful.

#include "bench_common.h"
#include "exp/experiment.h"

namespace besync {
namespace {

int Run(const BenchOptions& options) {
  std::cout << "== Section 10.1 ablation: refresh batching ==\n"
            << "divergence vs batch size, at tight and ample message budgets.\n\n";

  const std::vector<int> batch_sizes =
      options.full ? std::vector<int>{1, 2, 4, 8, 16} : std::vector<int>{1, 2, 4, 8};
  const std::vector<double> budgets =
      options.full ? std::vector<double>{0.05, 0.1, 0.2, 0.5, 1.0}
                   : std::vector<double>{0.05, 0.2, 1.0};

  TablePrinter table({"bandwidth_fraction", "batch", "divergence",
                      "object_refreshes"});
  for (double fraction : budgets) {
    for (int batch : batch_sizes) {
      ExperimentConfig config;
      config.scheduler = SchedulerKind::kCooperative;
      config.metric = MetricKind::kValueDeviation;
      config.workload.num_sources = options.full ? 20 : 10;
      config.workload.objects_per_source = 20;
      config.workload.rate_lo = 0.02;
      config.workload.rate_hi = 1.0;
      config.workload.seed = options.seed + 5;
      config.harness.warmup = 200.0;
      config.harness.measure = options.full ? 4000.0 : 1500.0;
      config.cache_bandwidth_avg = fraction * config.workload.num_sources *
                                   config.workload.objects_per_source;
      config.max_batch = batch;
      config.max_batch_delay = 5.0;

      auto result = RunExperiment(config);
      BESYNC_CHECK_OK(result.status());
      table.AddRow({TablePrinter::Cell(fraction), TablePrinter::Cell(batch),
                    TablePrinter::Cell(result->per_object_weighted),
                    TablePrinter::Cell(result->scheduler.refreshes_delivered)});
    }
  }
  EmitTable(table, options);
  return 0;
}

}  // namespace
}  // namespace besync

int main(int argc, char** argv) {
  return besync::Run(besync::BenchOptions::Parse(argc, argv));
}
