// Per-run scale trajectory: the cooperative protocol on one big workload,
// swept over (sources x objects-per-source x caches) points up to the
// 1M-object x 1k-cache configuration. Reports, per (point, run_threads)
// row:
//
//   - the objective (sanity: the protocol still converges at scale),
//   - refreshes delivered, wall seconds, microseconds per delivered
//     refresh, simulation ticks per wall second, peak RSS, and the
//     parallel efficiency versus the first-listed thread count.
//
// This is the bench behind BENCH_scale.json (tools/record_bench.py): the
// recorded grid is small and deterministic; the --full trajectory exercises
// the 100k and 1M points. `--run_threads_list` (default 1,2) zips every
// point against each thread count (`--run_threads=N` pins a single count)
// — rows keep the thread-count-free point name, so equal-named rows being
// byte-identical in the JSON IS the recorded determinism proof
// (CooperativeConfig::run_threads changes nothing but wall time), and
// `--run_threads=4 --json=a.json` byte-equals `--run_threads=1`.
//
// With --perf the JSON gains the nondeterministic "perf" member: the
// aggregate phase_breakdown (util/phase_timer.h, wall seconds per tick
// phase) plus a "scaling" row per (point, run_threads) with that run's
// wall_seconds, us_per_refresh and its own phase_breakdown.
//
// Points are zipped from --sources_list/--objects_list/--caches_list (equal
// lengths), with per-source object counts: point i runs sources_list[i]
// sources x objects_list[i] objects each over caches_list[i] caches under
// partitioned interest (cache = source mod caches), so per-cache load stays
// constant as the topology grows and the cost of scale is isolated to the
// engine.

#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/phase_timer.h"

namespace besync {
namespace {

/// {"begin_tick": 1.234567, ...} — wall seconds per phase.
std::string PhaseBreakdownJson(const PhaseTimer& timer) {
  std::ostringstream out;
  out << '{' << std::fixed << std::setprecision(6);
  for (int p = 0; p < PhaseTimer::kNumPhases; ++p) {
    const auto phase = static_cast<PhaseTimer::Phase>(p);
    if (p > 0) out << ", ";
    out << '"' << PhaseTimer::Name(phase)
        << "\": " << static_cast<double>(timer.nanos(phase)) * 1e-9;
  }
  out << '}';
  return out.str();
}

int Run(const BenchOptions& options) {
  std::cout << "== Per-run scale trajectory (cooperative protocol) ==\n"
            << "Partitioned interest; per-cache bandwidth fixed, so wall cost\n"
            << "tracks engine overhead, not protocol contention.\n\n";

  std::vector<int> sources_list{8, 32};
  std::vector<int> objects_list{125, 250};
  std::vector<int> caches_list{4, 16};
  if (options.full) {
    // The trajectory: mid-size 100k objects, then 1M objects x 1k caches.
    sources_list = {200, 1000};
    objects_list = {500, 1000};
    caches_list = {100, 1000};
  }
  if (!options.flags.GetString("sources_list", "").empty()) {
    sources_list = ParseIntList("sources_list",
                                options.flags.GetString("sources_list", ""));
  }
  if (!options.flags.GetString("objects_list", "").empty()) {
    objects_list = ParseIntList("objects_list",
                                options.flags.GetString("objects_list", ""));
  }
  if (!options.flags.GetString("caches_list", "").empty()) {
    caches_list = ParseIntList("caches_list",
                               options.flags.GetString("caches_list", ""));
  }
  if (sources_list.size() != objects_list.size() ||
      sources_list.size() != caches_list.size()) {
    std::fprintf(stderr,
                 "--sources_list/--objects_list/--caches_list must be "
                 "equal-length (zipped points)\n");
    return 2;
  }

  // The thread-count axis: every point runs once per entry.
  // --run_threads_list wins over --run_threads (which pins one count); the
  // default {1, 2} keeps a parallel-vs-serial determinism pair in every
  // recorded baseline.
  std::vector<int> run_threads_list{1, 2};
  if (options.flags.GetInt("run_threads", 0) > 0) {
    run_threads_list = {static_cast<int>(options.flags.GetInt("run_threads", 1))};
  }
  if (!options.flags.GetString("run_threads_list", "").empty()) {
    run_threads_list = ParseIntList(
        "run_threads_list", options.flags.GetString("run_threads_list", ""));
  }

  const double warmup = options.flags.GetDouble("warmup", 10.0);
  const double measure = options.flags.GetDouble("measure", 60.0);
  // Low per-object update rates: at 1M objects the update-event stream, not
  // the per-object rate, is what exercises the engine.
  const double rate_hi = options.flags.GetDouble("rate_hi", 0.02);
  const double cache_bandwidth = options.flags.GetDouble("bandwidth", 4.0);
  const double source_bandwidth = options.flags.GetDouble("source_bandwidth", 2.0);

  // Observability outputs (--timeseries_out / --trace_out; bench_common.h).
  // The whole grid is cooperative, so the config applies to every job.
  const ObsBenchOptions obs = ObsFromFlags(options);

  // One timer per job (constructed up front: PhaseTimer is not movable),
  // so concurrently running jobs (--threads > 1) never share accumulators.
  std::vector<PhaseTimer> timers(sources_list.size() * run_threads_list.size());

  std::vector<ExperimentJob> jobs;
  std::vector<int> job_run_threads;
  for (size_t i = 0; i < sources_list.size(); ++i) {
    for (int run_threads : run_threads_list) {
      ExperimentJob job;
      const int64_t total_objects =
          static_cast<int64_t>(sources_list[i]) * objects_list[i];
      // The name stays thread-count-free on purpose: the JSON rows of one
      // point at different run_threads values must be byte-identical.
      job.name = std::to_string(total_objects) + "obj," +
                 std::to_string(caches_list[i]) + "caches";
      job.config.scheduler = SchedulerKind::kCooperative;
      job.config.workload.num_sources = sources_list[i];
      job.config.workload.objects_per_source = objects_list[i];
      job.config.workload.num_caches = caches_list[i];
      job.config.workload.interest_pattern = InterestPattern::kPartitionedBySource;
      job.config.workload.rate_lo = 0.0;
      job.config.workload.rate_hi = rate_hi;
      job.config.workload.seed = options.seed;
      job.config.harness.warmup = warmup;
      job.config.harness.measure = measure;
      job.config.cache_bandwidth_avg = cache_bandwidth;
      job.config.source_bandwidth_avg = source_bandwidth;
      job.config.run_threads = run_threads;
      job.config.obs = obs.config;
      if (options.perf) job.config.phase_timer = &timers[jobs.size()];
      job_run_threads.push_back(run_threads);
      jobs.push_back(std::move(job));
    }
  }

  const std::vector<JobResult> results =
      RunExperiments(jobs, options.runner("bench_scale"));

  // --perf: the common aggregate block plus phase_breakdown (summed over
  // jobs) and one scaling row per (point, run_threads).
  if (options.json.empty()) {
    // fall through to the table only
  } else if (!options.perf) {
    EmitJson(results, options);
  } else {
    PhaseTimer total;
    for (const PhaseTimer& timer : timers) {
      for (int p = 0; p < PhaseTimer::kNumPhases; ++p) {
        const auto phase = static_cast<PhaseTimer::Phase>(p);
        total.Add(phase, timer.nanos(phase));
      }
    }
    std::string fragment = PerfJsonFragment(BenchPerfFromResults(results));
    BESYNC_CHECK(!fragment.empty() && fragment.back() == '}');
    fragment.pop_back();  // reopen the perf object to append members
    std::ostringstream extra;
    extra << fragment << ", \"phase_breakdown\": " << PhaseBreakdownJson(total)
          << ", \"scaling\": [";
    for (size_t i = 0; i < results.size(); ++i) {
      const JobResult& job = results[i];
      const int64_t delivered = job.result.scheduler.refreshes_delivered;
      const double us_per_refresh =
          delivered > 0 ? job.wall_seconds * 1e6 / static_cast<double>(delivered)
                        : 0.0;
      if (i > 0) extra << ", ";
      extra << std::fixed << std::setprecision(6) << "{\"point\": \"" << job.name
            << "\", \"run_threads\": " << job_run_threads[i]
            << ", \"wall_seconds\": " << job.wall_seconds
            << ", \"us_per_refresh\": " << std::setprecision(4) << us_per_refresh
            << std::setprecision(6)
            << ", \"phase_breakdown\": " << PhaseBreakdownJson(timers[i]) << '}';
    }
    extra << "]}";
    const Status status = WriteResultsJson(options.json, results, extra.str());
    if (!status.ok()) {
      std::fprintf(stderr, "JSON write failed: %s\n", status.ToString().c_str());
      std::exit(1);
    }
    std::fprintf(stderr, "wrote %s\n", options.json.c_str());
  }
  EmitObsOutputs(results, obs);
  CheckJobsOk(results);

  // Per-point reference cost for the parallel-efficiency column: the
  // first-listed thread count's us/refresh. par_eff = speedup / extra
  // threads relative to that reference (1.0 at the reference row; ideal
  // linear scaling keeps it at 1.0).
  std::vector<double> reference_us(results.size(), 0.0);
  for (size_t i = 0; i < results.size(); i += run_threads_list.size()) {
    const JobResult& base = results[i];
    const int64_t base_delivered = base.result.scheduler.refreshes_delivered;
    const double base_us =
        base_delivered > 0
            ? base.wall_seconds * 1e6 / static_cast<double>(base_delivered)
            : 0.0;
    for (size_t k = 0; k < run_threads_list.size(); ++k) {
      reference_us[i + k] = base_us;
    }
  }

  const double ticks = (warmup + measure) / 1.0;  // tick_length = 1 s
  TablePrinter table({"point", "run_threads", "total_div", "delivered", "wall_ms",
                      "us_per_refresh", "ticks_per_sec", "par_eff",
                      "peak_rss_mb"});
  const int reference_threads = run_threads_list.front();
  for (size_t i = 0; i < results.size(); ++i) {
    const JobResult& job = results[i];
    const int64_t delivered = job.result.scheduler.refreshes_delivered;
    const double us_per_refresh =
        delivered > 0 ? job.wall_seconds * 1e6 / static_cast<double>(delivered) : 0.0;
    const double ticks_per_sec =
        job.wall_seconds > 0.0 ? ticks / job.wall_seconds : 0.0;
    const double par_eff =
        us_per_refresh > 0.0 && reference_us[i] > 0.0
            ? (reference_us[i] * static_cast<double>(reference_threads)) /
                  (us_per_refresh * static_cast<double>(job_run_threads[i]))
            : 0.0;
    table.AddRow({TablePrinter::Cell(job.name),
                  TablePrinter::Cell(job_run_threads[i]),
                  TablePrinter::Cell(job.result.total_weighted_divergence),
                  TablePrinter::Cell(delivered),
                  TablePrinter::Cell(job.wall_seconds * 1e3),
                  TablePrinter::Cell(us_per_refresh),
                  TablePrinter::Cell(ticks_per_sec), TablePrinter::Cell(par_eff),
                  TablePrinter::Cell(static_cast<double>(ReadPeakRssBytes()) /
                                     (1024.0 * 1024.0))});
  }
  EmitTable(table, options);
  return 0;
}

}  // namespace
}  // namespace besync

int main(int argc, char** argv) {
  std::vector<std::string> flags{
      "sources_list", "objects_list", "caches_list", "run_threads",
      "run_threads_list", "warmup", "measure", "rate_hi", "bandwidth",
      "source_bandwidth"};
  for (std::string& flag : besync::ObsFlagNames()) flags.push_back(std::move(flag));
  return besync::Run(besync::BenchOptions::Parse(argc, argv, std::move(flags)));
}
