// Per-run scale trajectory: the cooperative protocol on one big workload,
// swept over (sources x objects-per-source x caches) points up to the
// 1M-object x 1k-cache configuration. Reports, per point:
//
//   - the objective (sanity: the protocol still converges at scale),
//   - refreshes delivered, wall seconds, microseconds per delivered
//     refresh, simulation ticks per wall second, and peak RSS.
//
// This is the bench behind BENCH_scale.json (tools/record_bench.py): the
// recorded grid is small and deterministic; the --full trajectory exercises
// the 100k and 1M points. `--run_threads` shards the tick loop
// (CooperativeConfig::run_threads) — results are bitwise identical at any
// value, so `--run_threads=4 --json=a.json` byte-equals `--run_threads=1`.
//
// Points are zipped from --sources_list/--objects_list/--caches_list (equal
// lengths), with per-source object counts: point i runs sources_list[i]
// sources x objects_list[i] objects each over caches_list[i] caches under
// partitioned interest (cache = source mod caches), so per-cache load stays
// constant as the topology grows and the cost of scale is isolated to the
// engine.

#include <string>
#include <vector>

#include "bench_common.h"

namespace besync {
namespace {

int Run(const BenchOptions& options) {
  std::cout << "== Per-run scale trajectory (cooperative protocol) ==\n"
            << "Partitioned interest; per-cache bandwidth fixed, so wall cost\n"
            << "tracks engine overhead, not protocol contention.\n\n";

  std::vector<int> sources_list{8, 32};
  std::vector<int> objects_list{125, 250};
  std::vector<int> caches_list{4, 16};
  if (options.full) {
    // The trajectory: mid-size 100k objects, then 1M objects x 1k caches.
    sources_list = {200, 1000};
    objects_list = {500, 1000};
    caches_list = {100, 1000};
  }
  if (!options.flags.GetString("sources_list", "").empty()) {
    sources_list = ParseIntList("sources_list",
                                options.flags.GetString("sources_list", ""));
  }
  if (!options.flags.GetString("objects_list", "").empty()) {
    objects_list = ParseIntList("objects_list",
                                options.flags.GetString("objects_list", ""));
  }
  if (!options.flags.GetString("caches_list", "").empty()) {
    caches_list = ParseIntList("caches_list",
                               options.flags.GetString("caches_list", ""));
  }
  if (sources_list.size() != objects_list.size() ||
      sources_list.size() != caches_list.size()) {
    std::fprintf(stderr,
                 "--sources_list/--objects_list/--caches_list must be "
                 "equal-length (zipped points)\n");
    return 2;
  }

  const int run_threads = static_cast<int>(options.flags.GetInt("run_threads", 1));
  const double warmup = options.flags.GetDouble("warmup", 10.0);
  const double measure = options.flags.GetDouble("measure", 60.0);
  // Low per-object update rates: at 1M objects the update-event stream, not
  // the per-object rate, is what exercises the engine.
  const double rate_hi = options.flags.GetDouble("rate_hi", 0.02);
  const double cache_bandwidth = options.flags.GetDouble("bandwidth", 4.0);
  const double source_bandwidth = options.flags.GetDouble("source_bandwidth", 2.0);

  std::vector<ExperimentJob> jobs;
  for (size_t i = 0; i < sources_list.size(); ++i) {
    ExperimentJob job;
    const int64_t total_objects =
        static_cast<int64_t>(sources_list[i]) * objects_list[i];
    job.name = std::to_string(total_objects) + "obj," +
               std::to_string(caches_list[i]) + "caches";
    job.config.scheduler = SchedulerKind::kCooperative;
    job.config.workload.num_sources = sources_list[i];
    job.config.workload.objects_per_source = objects_list[i];
    job.config.workload.num_caches = caches_list[i];
    job.config.workload.interest_pattern = InterestPattern::kPartitionedBySource;
    job.config.workload.rate_lo = 0.0;
    job.config.workload.rate_hi = rate_hi;
    job.config.workload.seed = options.seed;
    job.config.harness.warmup = warmup;
    job.config.harness.measure = measure;
    job.config.cache_bandwidth_avg = cache_bandwidth;
    job.config.source_bandwidth_avg = source_bandwidth;
    job.config.run_threads = run_threads;
    jobs.push_back(std::move(job));
  }

  const std::vector<JobResult> results =
      RunExperiments(jobs, options.runner("bench_scale"));
  EmitJson(results, options);
  CheckJobsOk(results);

  const double ticks = (warmup + measure) / 1.0;  // tick_length = 1 s
  TablePrinter table({"point", "run_threads", "total_div", "delivered", "wall_ms",
                      "us_per_refresh", "ticks_per_sec", "peak_rss_mb"});
  for (const JobResult& job : results) {
    const int64_t delivered = job.result.scheduler.refreshes_delivered;
    const double us_per_refresh =
        delivered > 0 ? job.wall_seconds * 1e6 / static_cast<double>(delivered) : 0.0;
    const double ticks_per_sec =
        job.wall_seconds > 0.0 ? ticks / job.wall_seconds : 0.0;
    table.AddRow({TablePrinter::Cell(job.name), TablePrinter::Cell(run_threads),
                  TablePrinter::Cell(job.result.total_weighted_divergence),
                  TablePrinter::Cell(delivered),
                  TablePrinter::Cell(job.wall_seconds * 1e3),
                  TablePrinter::Cell(us_per_refresh),
                  TablePrinter::Cell(ticks_per_sec),
                  TablePrinter::Cell(static_cast<double>(ReadPeakRssBytes()) /
                                     (1024.0 * 1024.0))});
  }
  EmitTable(table, options);
  return 0;
}

}  // namespace
}  // namespace besync

int main(int argc, char** argv) {
  return besync::Run(besync::BenchOptions::Parse(
      argc, argv,
      {"sources_list", "objects_list", "caches_list", "run_threads", "warmup",
       "measure", "rate_hi", "bandwidth", "source_bandwidth"}));
}
