// bench_protocol: the consistency-protocol crossover — push refresh vs
// invalidation vs TTL/lease, head-to-head across operating regimes.
//
// Runs the cooperative engine on one partitioned multi-cache workload while
// sweeping the regime axes (exp/protocol_sweep.h): client read rate x
// per-cache bandwidth x relay depth, with all three protocols at every
// regime. Push refresh spends source messages keeping replicas fresh
// whether or not anyone reads them; invalidation spends tiny notifications
// and lets read misses pull data back in; TTL/lease spends nothing at the
// source and lets leases expire. The interesting output is the crossover
// table: which protocol wins total divergence and which wins read-time
// staleness p95 in each regime — push refresh should dominate divergence
// when reads are rare (nothing else refills unread replicas), invalidation
// should win read staleness when reads are frequent and bandwidth tight.
//
// Defaults finish in seconds; --full runs a larger shape. Like the other
// runner benches, --threads=N parallelizes the grid and --json output is
// byte-identical at any thread count (tools/record_bench.py records it as
// the BENCH_protocol.json trajectory baseline).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exp/protocol_sweep.h"

namespace besync {
namespace {

/// Parses one protocol name (`push-refresh`, `invalidation`, `ttl-lease`),
/// exiting with a usage error naming `flag` on anything else.
SyncProtocolKind ParseProtocolKind(const std::string& flag, const std::string& name) {
  static const SyncProtocolKind kinds[] = {SyncProtocolKind::kPushRefresh,
                                           SyncProtocolKind::kInvalidation,
                                           SyncProtocolKind::kTtlLease};
  for (SyncProtocolKind kind : kinds) {
    if (SyncProtocolKindToString(kind) == name) return kind;
  }
  std::fprintf(stderr,
               "--%s: unknown protocol '%s' (push-refresh, invalidation, ttl-lease)\n",
               flag.c_str(), name.c_str());
  std::exit(2);
}

int Run(const BenchOptions& options) {
  ProtocolSweepConfig config;
  config.base.scheduler = SchedulerKind::kCooperative;
  config.base.metric = MetricKind::kValueDeviation;
  config.base.workload.num_sources =
      static_cast<int>(options.flags.GetInt("sources", options.full ? 16 : 8));
  config.base.workload.objects_per_source =
      static_cast<int>(options.flags.GetInt("objects", options.full ? 25 : 10));
  const int num_caches =
      static_cast<int>(options.flags.GetInt("caches", options.full ? 4 : 2));
  config.base.workload.num_caches = num_caches;
  config.base.workload.interest_pattern =
      num_caches == 1 ? InterestPattern::kSingleCache
                      : InterestPattern::kPartitionedBySource;
  config.base.workload.rate_lo = 0.0;
  config.base.workload.rate_hi = 1.0;
  config.base.workload.seed = options.seed;
  config.base.workload.read.zipf_exponent = options.flags.GetDouble("zipf", 0.8);
  // Constrain relay edges to their subtree's aggregate demand so relay
  // depth is a real regime axis, not a pass-through label.
  config.base.workload.relay_bandwidth_factor =
      options.flags.GetDouble("relay_factor", 1.0);
  config.base.harness.warmup = options.flags.GetDouble("warmup", 100.0);
  config.base.harness.measure =
      options.flags.GetDouble("measure", options.full ? 3000.0 : 600.0);
  // A finite source uplink is what makes the crossover interesting: push
  // refresh competes for it update by update, while invalidation notifies
  // many objects per unit (batching) and refills on demand-priority pulls.
  config.base.source_bandwidth_avg = options.flags.GetDouble("source_bw", 1.0);
  config.base.loss_rate = options.flags.GetDouble("loss", 0.0);
  config.base.run_threads =
      static_cast<int>(options.flags.GetInt("run_threads", 1));
  config.ttl = options.flags.GetDouble("ttl", 50.0);
  config.invalidate_batch =
      static_cast<int>(options.flags.GetInt("invalidate_batch", 4));
  config.threads = options.threads;

  if (options.flags.Has("read_rates")) {
    config.read_rates =
        ParseDoubleList("read_rates", options.flags.GetString("read_rates", ""));
  }
  if (options.flags.Has("bandwidths")) {
    config.bandwidths =
        ParseDoubleList("bandwidths", options.flags.GetString("bandwidths", ""));
  }
  if (options.flags.Has("tiers")) {
    config.relay_tiers = ParseIntList("tiers", options.flags.GetString("tiers", ""));
  } else {
    config.relay_tiers = {0, 2};
  }
  if (options.flags.Has("protocols")) {
    config.protocols.clear();
    for (const std::string& name :
         SplitList(options.flags.GetString("protocols", ""))) {
      config.protocols.push_back(ParseProtocolKind("protocols", name));
    }
  }

  std::vector<JobResult> raw;
  const auto points = RunProtocolSweep(config, &raw);
  if (!points.ok()) {
    std::fprintf(stderr, "protocol sweep failed: %s\n",
                 points.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"rate", "B_C", "tiers", "protocol", "total_div",
                      "stale_p95", "hit_rate", "refreshes", "invals", "pulls",
                      "wall_ms"});
  for (const ProtocolSweepPoint& point : *points) {
    const SchedulerStats& s = point.result.scheduler;
    table.AddRow({TablePrinter::Cell(point.read_rate),
                  TablePrinter::Cell(point.bandwidth),
                  TablePrinter::Cell(point.relay_tiers),
                  SyncProtocolKindToString(point.protocol),
                  TablePrinter::Cell(point.result.total_weighted_divergence),
                  TablePrinter::Cell(s.read_staleness_p95),
                  TablePrinter::Cell(point.hit_rate()),
                  TablePrinter::Cell(s.refreshes_delivered),
                  TablePrinter::Cell(s.invalidations_received),
                  TablePrinter::Cell(s.pulls_delivered),
                  TablePrinter::Cell(point.wall_seconds * 1e3)});
  }
  EmitTable(table, options);

  // Crossover summary: protocols are innermost in the sweep order, so each
  // regime is one consecutive block of |protocols| points.
  const size_t stride = config.protocols.size();
  TablePrinter crossover(
      {"rate", "B_C", "tiers", "div_winner", "stale_p95_winner"});
  for (size_t base = 0; base + stride <= points->size(); base += stride) {
    size_t best_div = base;
    size_t best_stale = base;
    for (size_t k = base + 1; k < base + stride; ++k) {
      const ProtocolSweepPoint& point = (*points)[k];
      if (point.result.total_weighted_divergence <
          (*points)[best_div].result.total_weighted_divergence) {
        best_div = k;
      }
      if (point.result.scheduler.read_staleness_p95 <
          (*points)[best_stale].result.scheduler.read_staleness_p95) {
        best_stale = k;
      }
    }
    const ProtocolSweepPoint& regime = (*points)[base];
    crossover.AddRow({TablePrinter::Cell(regime.read_rate),
                      TablePrinter::Cell(regime.bandwidth),
                      TablePrinter::Cell(regime.relay_tiers),
                      SyncProtocolKindToString((*points)[best_div].protocol),
                      SyncProtocolKindToString((*points)[best_stale].protocol)});
  }
  std::printf("\ncrossover (winner per regime):\n");
  crossover.Print(std::cout);

  EmitJson(raw, options);
  CheckJobsOk(raw);
  return 0;
}

}  // namespace
}  // namespace besync

int main(int argc, char** argv) {
  return besync::Run(besync::BenchOptions::Parse(
      argc, argv,
      {"sources", "objects", "caches", "bandwidths", "read_rates", "protocols",
       "ttl", "invalidate_batch", "tiers", "relay_factor", "warmup", "measure",
       "loss", "zipf", "source_bw", "run_threads"}));
}
