#!/usr/bin/env python3
"""Summarize a besync.trace.v1 file (--trace_out of the obs-wired benches).

Reports, per job (Perfetto pid):

  - event counts by kind,
  - per-hop latency percentiles over message lifecycles, grouped by
    (cache, object, version, pull):
      queue_wait  enqueue -> send      (source-side queueing)
      transit     send -> apply        (network + relay store/forward)
      end_to_end  enqueue -> apply
      relay_wait  the relay_forward events' recorded store wait (args.value)
  - the fault/recovery timeline: fault events in time order and every
    resync_start with its matching resync_done duration.

With --timeseries pointing at the matching besync.timeseries.v1 file, also
prints each column's peak (value, time) per job — queue/deficit peaks line
up with the trace timeline.

Stdlib only. Percentiles use the nearest-rank method, so output for a fixed
input is byte-deterministic. `--selftest` runs the summarizer against an
embedded miniature trace and exits nonzero on any regression (CI hook).
"""

import argparse
import json
import sys
from collections import defaultdict

HOP_PAIRS = [
    ("queue_wait", "enqueue", "send"),
    ("transit", "send", "apply"),
    ("end_to_end", "enqueue", "apply"),
]

# FaultEventKind enum order in src/fault/fault_schedule.h (args.aux of
# "fault" events), using the schedule's canonical names.
FAULT_KINDS = [
    "cache-crash", "cache-restart", "relay-fail", "relay-recover",
    "link-down", "link-up", "slow-down", "slow-recover",
]


def percentile(sorted_values, fraction):
    """Nearest-rank percentile of an ascending list (deterministic)."""
    if not sorted_values:
        return None
    rank = max(1, -(-len(sorted_values) * fraction // 1))  # ceil
    return sorted_values[min(int(rank), len(sorted_values)) - 1]


def fault_kind_name(aux):
    if 0 <= aux < len(FAULT_KINDS):
        return FAULT_KINDS[aux]
    return "kind_%d" % aux


def load_json(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def job_names(document):
    """pid -> job name from the document's jobs index."""
    return {job["pid"]: job["name"] for job in document.get("jobs", [])}


def lifecycle_stats(events):
    """Per-hop latency lists over (cache, object, version, pull) groups.

    A hop is measured from the group's first occurrence of the source kind
    to its first occurrence of the destination kind at or after it; each
    group contributes at most one sample per hop (re-sends of the same
    version collapse onto the earliest lifecycle).
    """
    first = defaultdict(dict)  # key -> kind -> earliest t
    for event in events:
        args = event["args"]
        if args["object"] < 0:
            continue
        key = (args["cache"], args["object"], args["version"], args["pull"])
        kind = event["name"]
        if kind not in first[key] or event_t(event) < first[key][kind]:
            first[key][kind] = event_t(event)
    hops = {name: [] for name, _, _ in HOP_PAIRS}
    for kinds in first.values():
        for name, src, dst in HOP_PAIRS:
            if src in kinds and dst in kinds and kinds[dst] >= kinds[src]:
                hops[name].append(kinds[dst] - kinds[src])
    for values in hops.values():
        values.sort()
    return hops


def event_t(event):
    # args.t is the exact simulation time; ts is the same scaled to us.
    return event["args"]["t"]


def summarize_job(name, events, out):
    counts = defaultdict(int)
    for event in events:
        counts[event["name"]] += 1
    out.write("job: %s (%d events)\n" % (name, len(events)))
    for kind in sorted(counts):
        out.write("  %-16s %d\n" % (kind, counts[kind]))

    hops = lifecycle_stats(events)
    relay_waits = sorted(e["args"]["value"] for e in events
                         if e["name"] == "relay_forward")
    out.write("  hop latencies (sim seconds, nearest-rank):\n")
    out.write("    %-12s %6s %10s %10s %10s %10s\n" %
              ("hop", "n", "p50", "p95", "p99", "max"))
    for hop_name in [name for name, _, _ in HOP_PAIRS] + ["relay_wait"]:
        values = relay_waits if hop_name == "relay_wait" else hops[hop_name]
        if not values:
            out.write("    %-12s %6d %10s %10s %10s %10s\n" %
                      (hop_name, 0, "-", "-", "-", "-"))
            continue
        out.write("    %-12s %6d %10.4f %10.4f %10.4f %10.4f\n" %
                  (hop_name, len(values), percentile(values, 0.50),
                   percentile(values, 0.95), percentile(values, 0.99),
                   values[-1]))

    faults = [e for e in events if e["name"] == "fault"]
    starts = [e for e in events if e["name"] == "resync_start"]
    dones = [e for e in events if e["name"] == "resync_done"]
    if faults or starts or dones:
        out.write("  fault/recovery timeline:\n")
        for event in faults:
            args = event["args"]
            out.write("    t=%-10.4f fault %s node=%d factor=%s\n" %
                      (event_t(event), fault_kind_name(args["aux"]),
                       args["node"], args["value"]))
        # Match each start with the first done on the same cache after it.
        done_by_cache = defaultdict(list)
        for event in dones:
            done_by_cache[event["args"]["cache"]].append(event)
        complete = 0
        for start in starts:
            cache = start["args"]["cache"]
            match = next((d for d in done_by_cache[cache]
                          if event_t(d) >= event_t(start)), None)
            if match is None:
                out.write("    t=%-10.4f resync cache=%d objects=%d UNFINISHED\n"
                          % (event_t(start), cache, start["args"]["aux"]))
            else:
                done_by_cache[cache].remove(match)
                complete += 1
                out.write("    t=%-10.4f resync cache=%d objects=%d "
                          "done_t=%.4f took=%.4f\n" %
                          (event_t(start), cache, start["args"]["aux"],
                           event_t(match), match["args"]["value"]))
        out.write("    resyncs: %d started, %d completed\n"
                  % (len(starts), complete))


def summarize_trace(document, out, job_filter=None):
    if document.get("schema") != "besync.trace.v1":
        raise ValueError("not a besync.trace.v1 document")
    names = job_names(document)
    by_pid = defaultdict(list)
    for event in document.get("traceEvents", []):
        if event.get("ph") == "i":  # instants carry the lifecycle payload
            by_pid[event["pid"]].append(event)
    for pid in sorted(by_pid):
        name = names.get(pid, "pid%d" % pid)
        if job_filter is not None and job_filter not in name:
            continue
        summarize_job(name, by_pid[pid], out)


def summarize_timeseries(document, out, job_filter=None):
    if document.get("schema") != "besync.timeseries.v1":
        raise ValueError("not a besync.timeseries.v1 document")
    for job in document.get("jobs", []):
        if job_filter is not None and job_filter not in job["name"]:
            continue
        columns = job["columns"]
        samples = job["samples"]
        out.write("timeseries: %s (%d samples, interval %s)\n" %
                  (job["name"], len(samples), job["effective_interval"]))
        if not samples:
            continue
        for c in range(1, len(columns)):
            peak = max(samples, key=lambda row: row[c])
            out.write("  %-28s peak %.6g at t=%.6g last %.6g\n" %
                      (columns[c], peak[c], peak[0], samples[-1][c]))


SELFTEST_TRACE = {
    "schema": "besync.trace.v1",
    "jobs": [{"pid": 0, "name": "selftest", "tick_length": 1.0,
              "trace_dropped": 0, "events": 9}],
    "traceEvents": [
        {"name": "enqueue", "ph": "i", "pid": 0, "tid": 10000, "args":
         {"t": 1.0, "object": 7, "cache": 0, "source": 0, "node": -1,
          "version": 3, "aux": 0, "pull": False, "value": 0.0}},
        {"name": "send", "ph": "i", "pid": 0, "tid": 10000, "args":
         {"t": 3.0, "object": 7, "cache": 0, "source": 0, "node": -1,
          "version": 3, "aux": 0, "pull": False, "value": 0.0}},
        {"name": "relay_forward", "ph": "i", "pid": 0, "tid": 20001, "args":
         {"t": 4.0, "object": 7, "cache": 0, "source": 0, "node": 1,
          "version": 3, "aux": 0, "pull": False, "value": 1.0}},
        {"name": "apply", "ph": "i", "pid": 0, "tid": 1, "args":
         {"t": 6.0, "object": 7, "cache": 0, "source": 0, "node": -1,
          "version": 3, "aux": 0, "pull": False, "value": 0.0}},
        {"name": "fault", "ph": "i", "pid": 0, "tid": 9999, "args":
         {"t": 10.0, "object": -1, "cache": 0, "source": -1, "node": 0,
          "version": 0, "aux": 0, "pull": False, "value": 0.0}},
        {"name": "resync_start", "ph": "i", "pid": 0, "tid": 9999, "args":
         {"t": 12.0, "object": -1, "cache": 0, "source": -1, "node": 0,
          "version": 0, "aux": 5, "pull": False, "value": 0.0}},
        {"name": "resync_done", "ph": "i", "pid": 0, "tid": 1, "args":
         {"t": 15.0, "object": -1, "cache": 0, "source": -1, "node": 0,
          "version": 0, "aux": 0, "pull": False, "value": 3.0}},
    ],
}


def selftest():
    import io
    out = io.StringIO()
    summarize_trace(SELFTEST_TRACE, out)
    text = out.getvalue()
    checks = [
        "job: selftest (7 events)",
        # enqueue(1) -> send(3) -> apply(6): queue 2, transit 3, e2e 5.
        "queue_wait        1     2.0000",
        "transit           1     3.0000",
        "end_to_end        1     5.0000",
        "relay_wait        1     1.0000",
        "fault cache-crash node=0",
        "resync cache=0 objects=5 done_t=15.0000 took=3.0000",
        "resyncs: 1 started, 1 completed",
    ]
    failed = [c for c in checks if c not in text]
    if failed:
        sys.stderr.write(text)
        for check in failed:
            sys.stderr.write("selftest: missing %r\n" % check)
        return 1
    sys.stdout.write("trace_summary selftest ok (%d checks)\n" % len(checks))
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", nargs="?", help="besync.trace.v1 file")
    parser.add_argument("--timeseries", help="matching besync.timeseries.v1 file")
    parser.add_argument("--job", help="only jobs whose name contains this")
    parser.add_argument("--selftest", action="store_true",
                        help="run the embedded regression check and exit")
    args = parser.parse_args(argv)
    if args.selftest:
        return selftest()
    if args.trace is None and args.timeseries is None:
        parser.error("need a trace file, --timeseries, or --selftest")
    if args.trace is not None:
        summarize_trace(load_json(args.trace), sys.stdout, args.job)
    if args.timeseries is not None:
        summarize_timeseries(load_json(args.timeseries), sys.stdout, args.job)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
