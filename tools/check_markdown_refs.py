#!/usr/bin/env python3
"""Checks that documentation references resolve to real files.

Two classes of reference are verified, both of which have broken silently
in the past (a source comment cited a DESIGN.md that did not exist yet):

1. Relative markdown links ``[text](path)`` in every ``*.md`` file —
   the target must exist, resolved against the linking file's directory
   (anchors and external ``scheme://`` / ``mailto:`` links are skipped).
2. Mentions of ``*.md`` files in source comments under ``src/``,
   ``bench/``, ``tests/``, ``tools/`` and ``examples/`` — the named file
   must exist at the repository root.

Exit status: 0 when every reference resolves, 1 otherwise (each dangling
reference is printed as ``file:line: message``). Run from anywhere; the
repo root is derived from this script's location.
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
MD_MENTION = re.compile(r"[A-Za-z0-9_.-]+\.md\b")
SOURCE_DIRS = ["src", "bench", "tests", "tools", "examples"]
SOURCE_SUFFIXES = {".h", ".cc", ".cpp", ".py"}


def iter_markdown_files():
    for path in sorted(REPO_ROOT.rglob("*.md")):
        if any(part in {"build", ".git", "_deps"} for part in path.parts):
            continue
        yield path


def check_markdown_links(errors):
    for md_file in iter_markdown_files():
        for lineno, line in enumerate(
            md_file.read_text(encoding="utf-8", errors="replace").splitlines(),
            start=1,
        ):
            for match in MD_LINK.finditer(line):
                target = match.group(1).split("#", 1)[0]
                if not target or "://" in target or target.startswith("mailto:"):
                    continue
                resolved = (md_file.parent / target).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{md_file.relative_to(REPO_ROOT)}:{lineno}: "
                        f"dangling link target '{target}'"
                    )


def check_source_mentions(errors):
    for source_dir in SOURCE_DIRS:
        root = REPO_ROOT / source_dir
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES:
                continue
            for lineno, line in enumerate(
                path.read_text(encoding="utf-8", errors="replace").splitlines(),
                start=1,
            ):
                for match in MD_MENTION.finditer(line):
                    name = match.group(0)
                    if not (REPO_ROOT / name).exists():
                        errors.append(
                            f"{path.relative_to(REPO_ROOT)}:{lineno}: "
                            f"mentions '{name}' which does not exist at the repo root"
                        )


def main():
    errors = []
    check_markdown_links(errors)
    check_source_mentions(errors)
    for error in errors:
        print(error)
    if errors:
        print(f"{len(errors)} dangling doc reference(s)", file=sys.stderr)
        return 1
    print("all markdown links and doc references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
