#!/usr/bin/env python3
"""Records the bench trajectory baselines (BENCH_protocol.json,
BENCH_readpath.json, BENCH_scale.json).

Runs the benches of each baseline profile from a build directory with
--json, validates each output against the besync.run_results.v1 schema,
and writes the combined, schema-stamped baseline at the repo root. The
bench JSON deliberately excludes timings (exp/runner.h; bench_scale's
"perf" member is strictly opt-in and never recorded), so each baseline
is a deterministic function of the bench configs — reruns on an unchanged
tree produce identical bytes, and any diff in a PR is a real behavioral
change in the recorded grids.

Usage:
  tools/record_bench.py [--build-dir build]          # record all baselines
  tools/record_bench.py --out BENCH_scale.json       # record one baseline
  tools/record_bench.py --check   # validate the committed baselines only
  tools/record_bench.py --scaling-check scale.json   # validate a --perf run

--check additionally enforces the bench_scale determinism layout: every
point name appears at least twice (once per recorded run_threads value)
and all rows of one name are exactly identical — the committed baseline IS
the thread-invariance proof.

--scaling-check validates an (uncommitted) `bench_scale --perf` output:
the perf member must carry a phase_breakdown and per-(point, run_threads)
scaling rows whose phase sums stay within their wall time, and the widest
point must show either a real parallel speedup (>= --min-speedup when the
host has >= 4 CPUs) or near-zero parallel overhead (< --max-overhead on
smaller hosts, e.g. a 1-core CI container).
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RUN_RESULTS_SCHEMA = "besync.run_results.v1"
BASELINE_SCHEMA = "besync.bench_baseline.v1"

# One entry per committed baseline file: {bench binary: extra args}.
# Default scales keep each recording under a minute on one core —
# BENCH_scale.json records the bench_scale default (small) grid, not the
# --full 1M-object trajectory.
PROFILES = {
    "BENCH_protocol.json": {
        "bench_protocol": [],
    },
    "BENCH_readpath.json": {
        "bench_readpath": [],
        "bench_multicache": [],
    },
    "BENCH_scale.json": {
        "bench_scale": [],
    },
    "BENCH_fault.json": {
        "bench_fault": [],
    },
}

# Fields every run_results row must carry (exp/runner.h).
REQUIRED_RESULT_KEYS = {
    "name", "scheduler", "policy", "metric", "num_caches",
    "cache_bandwidth_avg", "source_bandwidth_avg", "loss_rate",
    "workload_seed", "ok", "error", "total_weighted_divergence",
    "per_cache_weighted", "per_object_weighted", "per_object_unweighted",
    "total_replicas", "refreshes_sent", "refreshes_delivered",
    "feedback_sent", "polls_sent", "cache_utilization",
}
# Fields read-enabled rows additionally carry.
READ_RESULT_KEYS = {
    "read_rate", "capacity", "eviction", "reads_total", "read_hits",
    "read_misses", "hit_rate", "pull_requests_sent", "pulls_delivered",
    "cache_evictions", "read_staleness_mean", "read_staleness_p50",
    "read_staleness_p95", "read_staleness_p99", "read_miss_latency_mean",
    "pull_bandwidth_share",
}
# Fields non-push-refresh consistency-protocol rows additionally carry.
PROTOCOL_RESULT_KEYS = {
    "protocol", "ttl", "invalidate_batch", "invalidations_sent",
    "invalidations_received",
}
# Fields fault-injected rows additionally carry.
FAULT_RESULT_KEYS = {
    "recovery_policy", "relay_store_policy", "cache_crashes",
    "cache_restarts", "relay_failures", "link_down_events",
    "slowdown_events", "crash_dropped_pulls", "resync_deliveries",
    "resync_pending", "time_to_resync_mean", "time_to_resync_p95",
}


def fail(message):
    print(f"record_bench: {message}", file=sys.stderr)
    sys.exit(1)


def validate_run_results(doc, context):
    if doc.get("schema") != RUN_RESULTS_SCHEMA:
        fail(f"{context}: schema is {doc.get('schema')!r}, "
             f"expected {RUN_RESULTS_SCHEMA!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail(f"{context}: empty or missing results array")
    for i, row in enumerate(results):
        missing = REQUIRED_RESULT_KEYS - row.keys()
        if missing:
            fail(f"{context}: result {i} missing keys {sorted(missing)}")
        if not row["ok"]:
            fail(f"{context}: result {i} ({row['name']!r}) failed: "
                 f"{row['error']!r}")
        extra_read = row.keys() & READ_RESULT_KEYS
        if extra_read and extra_read != READ_RESULT_KEYS:
            fail(f"{context}: result {i} carries a partial read-field set "
                 f"{sorted(extra_read)}")
        extra_protocol = row.keys() & PROTOCOL_RESULT_KEYS
        if extra_protocol and extra_protocol != PROTOCOL_RESULT_KEYS:
            fail(f"{context}: result {i} carries a partial protocol-field "
                 f"set {sorted(extra_protocol)}")
        extra_fault = row.keys() & FAULT_RESULT_KEYS
        if extra_fault and extra_fault != FAULT_RESULT_KEYS:
            fail(f"{context}: result {i} carries a partial fault-field set "
                 f"{sorted(extra_fault)}")


def parse_point_name(name):
    """'proto=invalidation,rate=4,bw=12,tiers=0' -> dict of the axes."""
    point = {}
    for part in name.split(","):
        key, _, value = part.partition("=")
        point[key] = value
    return point


def check_protocol_crossover(results, context):
    """The acceptance bar for BENCH_protocol.json: on at least one recorded
    metric (total divergence or read-staleness p95) invalidation must beat
    push refresh in some regime AND lose to it in some other regime — a real
    crossover, not uniform dominance."""
    regimes = {}
    for row in results:
        point = parse_point_name(row["name"])
        regime = (point.get("rate"), point.get("bw"), point.get("tiers"))
        regimes.setdefault(regime, {})[
            point.get("proto", "push-refresh")] = row
    for metric in ("total_weighted_divergence", "read_staleness_p95"):
        inval_wins = push_wins = False
        for competitors in regimes.values():
            push = competitors.get("push-refresh")
            inval = competitors.get("invalidation")
            if push is None or inval is None:
                continue
            if inval[metric] < push[metric]:
                inval_wins = True
            if push[metric] < inval[metric]:
                push_wins = True
        if inval_wins and push_wins:
            return
    fail(f"{context}: no protocol crossover — neither total divergence nor "
         f"read-staleness p95 has regimes won by both push refresh and "
         f"invalidation")


def check_fault_recovery(results, context):
    """The acceptance bar for BENCH_fault.json: in at least one crashed
    regime the recovery-priority policy must finish resyncing faster than
    naive re-enqueueing (an unfinished resync counts as infinitely slow)
    WITHOUT giving up warm-cache freshness — the summed divergence of the
    never-crashed caches stays within a hair of naive's."""

    def warm_divergence(row):
        return sum(row["per_cache_weighted"][1:])

    def resync_key(row):
        if row["resync_pending"] > 0:
            return float("inf")
        return row["time_to_resync_p95"]

    regimes = {}
    for row in results:
        point = parse_point_name(row["name"])
        if int(point.get("crashes", "0")) == 0:
            continue
        regime = (point["crashes"], point.get("proto"), point.get("tiers"))
        regimes.setdefault(regime, {})[point.get("policy")] = row
    for competitors in regimes.values():
        naive = competitors.get("naive")
        priority = competitors.get("priority")
        if naive is None or priority is None:
            continue
        if (resync_key(priority) < resync_key(naive)
                and warm_divergence(priority)
                <= warm_divergence(naive) * 1.001):
            return
    fail(f"{context}: no regime where recovery-priority beats naive on "
         f"time-to-resync p95 while holding warm-cache divergence")


def check_scale_determinism(results, context):
    """BENCH_scale.json rows keep thread-count-free names, one row per
    recorded run_threads value: each name must appear at least twice and
    every row of one name must be exactly identical — the recorded
    parallel-vs-serial byte equality is the determinism proof."""
    groups = {}
    for row in results:
        groups.setdefault(row["name"], []).append(row)
    if len(groups) < 2:
        fail(f"{context}: bench_scale recorded fewer than 2 distinct points")
    for name, rows in groups.items():
        if len(rows) < 2:
            fail(f"{context}: scale point {name!r} recorded only once — the "
                 f"baseline must keep a run_threads pair per point "
                 f"(bench_scale's default run_threads_list is 1,2)")
        for i, row in enumerate(rows[1:], 1):
            if row != rows[0]:
                diff = sorted(k for k in rows[0]
                              if rows[0][k] != row.get(k))
                fail(f"{context}: scale point {name!r} row {i} differs from "
                     f"row 0 in {diff} — run_threads leaked into results")


PHASE_NAMES = ("begin_tick", "send", "relay", "deliver_apply", "read_path",
               "feedback")


def check_scaling(path, min_speedup, max_overhead):
    """Validates a `bench_scale --perf --json=FILE` capture: phase
    accounting must be consistent (phase sums never exceed wall time) and
    the widest recorded point must demonstrate parallel scaling — a real
    speedup on >= 4-CPU hosts, or bounded overhead on narrower ones."""
    context = os.path.basename(path)
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"{context}: cannot load: {error}")
    validate_run_results(doc, context)
    perf = doc.get("perf")
    if not isinstance(perf, dict):
        fail(f"{context}: no perf member — run bench_scale with --perf")
    breakdown = perf.get("phase_breakdown")
    if not isinstance(breakdown, dict):
        fail(f"{context}: perf carries no phase_breakdown")
    missing = set(PHASE_NAMES) - breakdown.keys()
    if missing:
        fail(f"{context}: phase_breakdown missing phases {sorted(missing)}")
    epsilon = 1e-6
    run_seconds = perf.get("run_seconds", 0.0)
    total_phase = sum(breakdown[p] for p in PHASE_NAMES)
    if any(breakdown[p] < 0.0 for p in PHASE_NAMES):
        fail(f"{context}: negative phase time in {breakdown}")
    if total_phase > run_seconds + epsilon:
        fail(f"{context}: phase_breakdown sums to {total_phase:.6f}s, more "
             f"than the perf run_seconds {run_seconds:.6f}s — phases must "
             f"nest inside the measured wall time")
    scaling = perf.get("scaling")
    if not isinstance(scaling, list) or not scaling:
        fail(f"{context}: perf carries no scaling rows")
    by_point = {}
    for row in scaling:
        for key in ("point", "run_threads", "wall_seconds", "us_per_refresh",
                    "phase_breakdown"):
            if key not in row:
                fail(f"{context}: scaling row missing {key!r}: {row}")
        row_phase = sum(row["phase_breakdown"].get(p, 0.0)
                        for p in PHASE_NAMES)
        if row_phase > row["wall_seconds"] + epsilon:
            fail(f"{context}: scaling row {row['point']!r} rt="
                 f"{row['run_threads']} phase sum {row_phase:.6f}s exceeds "
                 f"its wall_seconds {row['wall_seconds']:.6f}s")
        by_point.setdefault(row["point"], {})[row["run_threads"]] = row
    candidates = {point: rows for point, rows in by_point.items()
                  if 1 in rows and any(rt > 1 for rt in rows)}
    if not candidates:
        fail(f"{context}: scaling rows never pair run_threads=1 with a "
             f"run_threads>1 run — use --run_threads_list=1,N")

    def point_caches(point):
        for part in point.split(","):
            if part.endswith("caches"):
                return int(part[:-len("caches")])
        return 0

    widest = max(candidates, key=point_caches)
    rows = candidates[widest]
    base_us = rows[1]["us_per_refresh"]
    best_rt = max(rt for rt in rows if rt > 1)
    par_us = rows[best_rt]["us_per_refresh"]
    if base_us <= 0.0 or par_us <= 0.0:
        fail(f"{context}: zero us_per_refresh on point {widest!r}")
    speedup = base_us / par_us
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        if speedup < min_speedup:
            fail(f"{context}: point {widest!r} run_threads={best_rt} speedup "
                 f"{speedup:.3f}x < required {min_speedup:.3f}x on a "
                 f"{cpus}-CPU host")
        verdict = f"speedup {speedup:.3f}x (>= {min_speedup:.3f}x)"
    else:
        overhead = par_us / base_us - 1.0
        if overhead > max_overhead:
            fail(f"{context}: point {widest!r} run_threads={best_rt} adds "
                 f"{overhead:.1%} overhead on a {cpus}-CPU host (limit "
                 f"{max_overhead:.1%}) — the parallel engine must stay "
                 f"near-free when cores are scarce")
        verdict = f"overhead {max(overhead, 0.0):.1%} (< {max_overhead:.1%})"
    print(f"record_bench: {context} scaling OK — point {widest!r} "
          f"run_threads={best_rt} vs 1: {verdict}; phase sum "
          f"{total_phase:.3f}s <= run {run_seconds:.3f}s")


def validate_baseline(doc, context, profile):
    if doc.get("schema") != BASELINE_SCHEMA:
        fail(f"{context}: schema is {doc.get('schema')!r}, "
             f"expected {BASELINE_SCHEMA!r}")
    benches = doc.get("benches")
    if not isinstance(benches, dict) or not benches:
        fail(f"{context}: empty or missing benches object")
    missing = PROFILES[profile].keys() - benches.keys()
    if missing:
        fail(f"{context}: missing bench entries {sorted(missing)}")
    for name, results_doc in benches.items():
        validate_run_results(results_doc, f"{context}: bench {name!r}")
    if profile == "BENCH_readpath.json":
        # bench_readpath is the point of this baseline: require read rows.
        readpath = benches["bench_readpath"]
        if not any("hit_rate" in row for row in readpath["results"]):
            fail(f"{context}: bench_readpath recorded no read-enabled rows")
    if profile == "BENCH_protocol.json":
        # The point of this baseline is the crossover: every protocol row is
        # read-enabled, and the push-vs-invalidation comparison must flip
        # somewhere in the recorded grid.
        protocol = benches["bench_protocol"]
        if not any("protocol" in row for row in protocol["results"]):
            fail(f"{context}: bench_protocol recorded no protocol rows")
        check_protocol_crossover(protocol["results"], context)
    if profile == "BENCH_scale.json":
        # The recorded grid must stay a trajectory, not a single point, and
        # must never carry the nondeterministic perf member.
        scale = benches["bench_scale"]
        if len(scale["results"]) < 2:
            fail(f"{context}: bench_scale recorded fewer than 2 points")
        if "perf" in scale:
            fail(f"{context}: bench_scale recorded a perf member — "
                 f"baselines must be timing-free (drop --perf)")
        check_scale_determinism(scale["results"], context)
    if profile == "BENCH_fault.json":
        # The point of this baseline is the recovery crossover: every row
        # is fault-injected, and the dedicated recovery channel must earn
        # its keep somewhere in the recorded grid.
        fault = benches["bench_fault"]
        if not any("recovery_policy" in row for row in fault["results"]):
            fail(f"{context}: bench_fault recorded no fault rows")
        check_fault_recovery(fault["results"], context)


def run_bench(build_dir, name, extra_args):
    binary = os.path.join(build_dir, name)
    if not os.path.exists(binary):
        fail(f"{binary} not found — build the tree first "
             f"(cmake -B {build_dir} -S . && cmake --build {build_dir} -j)")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_path = handle.name
    try:
        command = [binary, f"--json={json_path}"] + extra_args
        result = subprocess.run(command, stdout=subprocess.DEVNULL,
                                stderr=subprocess.PIPE, text=True)
        if result.returncode != 0:
            fail(f"{name} exited {result.returncode}:\n{result.stderr}")
        with open(json_path) as f:
            doc = json.load(f)
    finally:
        os.unlink(json_path)
    validate_run_results(doc, name)
    return doc


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="build directory holding the bench binaries")
    parser.add_argument("--out", default=None, choices=sorted(PROFILES),
                        help="record only this baseline (default: all)")
    parser.add_argument("--check", action="store_true",
                        help="validate the committed baselines and exit "
                             "(no benches are run)")
    parser.add_argument("--scaling-check", metavar="FILE", default=None,
                        help="validate a `bench_scale --perf` JSON capture "
                             "(phase accounting + parallel speedup) and exit")
    parser.add_argument("--min-speedup", type=float, default=1.2,
                        help="minimum run_threads>1 speedup required by "
                             "--scaling-check on hosts with >= 4 CPUs")
    parser.add_argument("--max-overhead", type=float, default=0.15,
                        help="maximum parallel overhead tolerated by "
                             "--scaling-check on hosts with < 4 CPUs")
    args = parser.parse_args()

    if args.scaling_check:
        check_scaling(args.scaling_check, args.min_speedup, args.max_overhead)
        return

    profiles = [args.out] if args.out else sorted(PROFILES)
    if args.check:
        for profile in profiles:
            out_path = os.path.join(REPO_ROOT, profile)
            if not os.path.exists(out_path):
                fail(f"{out_path} does not exist; run tools/record_bench.py "
                     f"to record it")
            with open(out_path) as f:
                try:
                    doc = json.load(f)
                except json.JSONDecodeError as error:
                    fail(f"{out_path} is not valid JSON: {error}")
            validate_baseline(doc, profile, profile)
            print(f"record_bench: {profile} OK "
                  f"({sum(len(b['results']) for b in doc['benches'].values())} "
                  f"recorded rows)")
        return

    build_dir = args.build_dir if os.path.isabs(args.build_dir) \
        else os.path.join(REPO_ROOT, args.build_dir)
    for profile in profiles:
        baseline = {
            "schema": BASELINE_SCHEMA,
            "benches": {name: run_bench(build_dir, name, extra)
                        for name, extra in sorted(PROFILES[profile].items())},
        }
        validate_baseline(baseline, "recorded baseline", profile)
        # Sorted keys + fixed separators: the bytes depend only on results.
        with open(os.path.join(REPO_ROOT, profile), "w") as f:
            json.dump(baseline, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"record_bench: wrote {profile}")


if __name__ == "__main__":
    main()
