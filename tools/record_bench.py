#!/usr/bin/env python3
"""Records the bench trajectory baselines (BENCH_protocol.json,
BENCH_readpath.json, BENCH_scale.json).

Runs the benches of each baseline profile from a build directory with
--json, validates each output against the besync.run_results.v1 schema,
and writes the combined, schema-stamped baseline at the repo root. The
bench JSON deliberately excludes timings (exp/runner.h; bench_scale's
"perf" member is strictly opt-in and never recorded), so each baseline
is a deterministic function of the bench configs — reruns on an unchanged
tree produce identical bytes, and any diff in a PR is a real behavioral
change in the recorded grids.

Usage:
  tools/record_bench.py [--build-dir build]          # record all baselines
  tools/record_bench.py --out BENCH_scale.json       # record one baseline
  tools/record_bench.py --check   # validate the committed baselines only
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RUN_RESULTS_SCHEMA = "besync.run_results.v1"
BASELINE_SCHEMA = "besync.bench_baseline.v1"

# One entry per committed baseline file: {bench binary: extra args}.
# Default scales keep each recording under a minute on one core —
# BENCH_scale.json records the bench_scale default (small) grid, not the
# --full 1M-object trajectory.
PROFILES = {
    "BENCH_protocol.json": {
        "bench_protocol": [],
    },
    "BENCH_readpath.json": {
        "bench_readpath": [],
        "bench_multicache": [],
    },
    "BENCH_scale.json": {
        "bench_scale": [],
    },
    "BENCH_fault.json": {
        "bench_fault": [],
    },
}

# Fields every run_results row must carry (exp/runner.h).
REQUIRED_RESULT_KEYS = {
    "name", "scheduler", "policy", "metric", "num_caches",
    "cache_bandwidth_avg", "source_bandwidth_avg", "loss_rate",
    "workload_seed", "ok", "error", "total_weighted_divergence",
    "per_cache_weighted", "per_object_weighted", "per_object_unweighted",
    "total_replicas", "refreshes_sent", "refreshes_delivered",
    "feedback_sent", "polls_sent", "cache_utilization",
}
# Fields read-enabled rows additionally carry.
READ_RESULT_KEYS = {
    "read_rate", "capacity", "eviction", "reads_total", "read_hits",
    "read_misses", "hit_rate", "pull_requests_sent", "pulls_delivered",
    "cache_evictions", "read_staleness_mean", "read_staleness_p50",
    "read_staleness_p95", "read_staleness_p99", "read_miss_latency_mean",
    "pull_bandwidth_share",
}
# Fields non-push-refresh consistency-protocol rows additionally carry.
PROTOCOL_RESULT_KEYS = {
    "protocol", "ttl", "invalidate_batch", "invalidations_sent",
    "invalidations_received",
}
# Fields fault-injected rows additionally carry.
FAULT_RESULT_KEYS = {
    "recovery_policy", "relay_store_policy", "cache_crashes",
    "cache_restarts", "relay_failures", "link_down_events",
    "slowdown_events", "crash_dropped_pulls", "resync_deliveries",
    "resync_pending", "time_to_resync_mean", "time_to_resync_p95",
}


def fail(message):
    print(f"record_bench: {message}", file=sys.stderr)
    sys.exit(1)


def validate_run_results(doc, context):
    if doc.get("schema") != RUN_RESULTS_SCHEMA:
        fail(f"{context}: schema is {doc.get('schema')!r}, "
             f"expected {RUN_RESULTS_SCHEMA!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail(f"{context}: empty or missing results array")
    for i, row in enumerate(results):
        missing = REQUIRED_RESULT_KEYS - row.keys()
        if missing:
            fail(f"{context}: result {i} missing keys {sorted(missing)}")
        if not row["ok"]:
            fail(f"{context}: result {i} ({row['name']!r}) failed: "
                 f"{row['error']!r}")
        extra_read = row.keys() & READ_RESULT_KEYS
        if extra_read and extra_read != READ_RESULT_KEYS:
            fail(f"{context}: result {i} carries a partial read-field set "
                 f"{sorted(extra_read)}")
        extra_protocol = row.keys() & PROTOCOL_RESULT_KEYS
        if extra_protocol and extra_protocol != PROTOCOL_RESULT_KEYS:
            fail(f"{context}: result {i} carries a partial protocol-field "
                 f"set {sorted(extra_protocol)}")
        extra_fault = row.keys() & FAULT_RESULT_KEYS
        if extra_fault and extra_fault != FAULT_RESULT_KEYS:
            fail(f"{context}: result {i} carries a partial fault-field set "
                 f"{sorted(extra_fault)}")


def parse_point_name(name):
    """'proto=invalidation,rate=4,bw=12,tiers=0' -> dict of the axes."""
    point = {}
    for part in name.split(","):
        key, _, value = part.partition("=")
        point[key] = value
    return point


def check_protocol_crossover(results, context):
    """The acceptance bar for BENCH_protocol.json: on at least one recorded
    metric (total divergence or read-staleness p95) invalidation must beat
    push refresh in some regime AND lose to it in some other regime — a real
    crossover, not uniform dominance."""
    regimes = {}
    for row in results:
        point = parse_point_name(row["name"])
        regime = (point.get("rate"), point.get("bw"), point.get("tiers"))
        regimes.setdefault(regime, {})[
            point.get("proto", "push-refresh")] = row
    for metric in ("total_weighted_divergence", "read_staleness_p95"):
        inval_wins = push_wins = False
        for competitors in regimes.values():
            push = competitors.get("push-refresh")
            inval = competitors.get("invalidation")
            if push is None or inval is None:
                continue
            if inval[metric] < push[metric]:
                inval_wins = True
            if push[metric] < inval[metric]:
                push_wins = True
        if inval_wins and push_wins:
            return
    fail(f"{context}: no protocol crossover — neither total divergence nor "
         f"read-staleness p95 has regimes won by both push refresh and "
         f"invalidation")


def check_fault_recovery(results, context):
    """The acceptance bar for BENCH_fault.json: in at least one crashed
    regime the recovery-priority policy must finish resyncing faster than
    naive re-enqueueing (an unfinished resync counts as infinitely slow)
    WITHOUT giving up warm-cache freshness — the summed divergence of the
    never-crashed caches stays within a hair of naive's."""

    def warm_divergence(row):
        return sum(row["per_cache_weighted"][1:])

    def resync_key(row):
        if row["resync_pending"] > 0:
            return float("inf")
        return row["time_to_resync_p95"]

    regimes = {}
    for row in results:
        point = parse_point_name(row["name"])
        if int(point.get("crashes", "0")) == 0:
            continue
        regime = (point["crashes"], point.get("proto"), point.get("tiers"))
        regimes.setdefault(regime, {})[point.get("policy")] = row
    for competitors in regimes.values():
        naive = competitors.get("naive")
        priority = competitors.get("priority")
        if naive is None or priority is None:
            continue
        if (resync_key(priority) < resync_key(naive)
                and warm_divergence(priority)
                <= warm_divergence(naive) * 1.001):
            return
    fail(f"{context}: no regime where recovery-priority beats naive on "
         f"time-to-resync p95 while holding warm-cache divergence")


def validate_baseline(doc, context, profile):
    if doc.get("schema") != BASELINE_SCHEMA:
        fail(f"{context}: schema is {doc.get('schema')!r}, "
             f"expected {BASELINE_SCHEMA!r}")
    benches = doc.get("benches")
    if not isinstance(benches, dict) or not benches:
        fail(f"{context}: empty or missing benches object")
    missing = PROFILES[profile].keys() - benches.keys()
    if missing:
        fail(f"{context}: missing bench entries {sorted(missing)}")
    for name, results_doc in benches.items():
        validate_run_results(results_doc, f"{context}: bench {name!r}")
    if profile == "BENCH_readpath.json":
        # bench_readpath is the point of this baseline: require read rows.
        readpath = benches["bench_readpath"]
        if not any("hit_rate" in row for row in readpath["results"]):
            fail(f"{context}: bench_readpath recorded no read-enabled rows")
    if profile == "BENCH_protocol.json":
        # The point of this baseline is the crossover: every protocol row is
        # read-enabled, and the push-vs-invalidation comparison must flip
        # somewhere in the recorded grid.
        protocol = benches["bench_protocol"]
        if not any("protocol" in row for row in protocol["results"]):
            fail(f"{context}: bench_protocol recorded no protocol rows")
        check_protocol_crossover(protocol["results"], context)
    if profile == "BENCH_scale.json":
        # The recorded grid must stay a trajectory, not a single point, and
        # must never carry the nondeterministic perf member.
        scale = benches["bench_scale"]
        if len(scale["results"]) < 2:
            fail(f"{context}: bench_scale recorded fewer than 2 points")
        if "perf" in scale:
            fail(f"{context}: bench_scale recorded a perf member — "
                 f"baselines must be timing-free (drop --perf)")
    if profile == "BENCH_fault.json":
        # The point of this baseline is the recovery crossover: every row
        # is fault-injected, and the dedicated recovery channel must earn
        # its keep somewhere in the recorded grid.
        fault = benches["bench_fault"]
        if not any("recovery_policy" in row for row in fault["results"]):
            fail(f"{context}: bench_fault recorded no fault rows")
        check_fault_recovery(fault["results"], context)


def run_bench(build_dir, name, extra_args):
    binary = os.path.join(build_dir, name)
    if not os.path.exists(binary):
        fail(f"{binary} not found — build the tree first "
             f"(cmake -B {build_dir} -S . && cmake --build {build_dir} -j)")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_path = handle.name
    try:
        command = [binary, f"--json={json_path}"] + extra_args
        result = subprocess.run(command, stdout=subprocess.DEVNULL,
                                stderr=subprocess.PIPE, text=True)
        if result.returncode != 0:
            fail(f"{name} exited {result.returncode}:\n{result.stderr}")
        with open(json_path) as f:
            doc = json.load(f)
    finally:
        os.unlink(json_path)
    validate_run_results(doc, name)
    return doc


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="build directory holding the bench binaries")
    parser.add_argument("--out", default=None, choices=sorted(PROFILES),
                        help="record only this baseline (default: all)")
    parser.add_argument("--check", action="store_true",
                        help="validate the committed baselines and exit "
                             "(no benches are run)")
    args = parser.parse_args()

    profiles = [args.out] if args.out else sorted(PROFILES)
    if args.check:
        for profile in profiles:
            out_path = os.path.join(REPO_ROOT, profile)
            if not os.path.exists(out_path):
                fail(f"{out_path} does not exist; run tools/record_bench.py "
                     f"to record it")
            with open(out_path) as f:
                try:
                    doc = json.load(f)
                except json.JSONDecodeError as error:
                    fail(f"{out_path} is not valid JSON: {error}")
            validate_baseline(doc, profile, profile)
            print(f"record_bench: {profile} OK "
                  f"({sum(len(b['results']) for b in doc['benches'].values())} "
                  f"recorded rows)")
        return

    build_dir = args.build_dir if os.path.isabs(args.build_dir) \
        else os.path.join(REPO_ROOT, args.build_dir)
    for profile in profiles:
        baseline = {
            "schema": BASELINE_SCHEMA,
            "benches": {name: run_bench(build_dir, name, extra)
                        for name, extra in sorted(PROFILES[profile].items())},
        }
        validate_baseline(baseline, "recorded baseline", profile)
        # Sorted keys + fixed separators: the bytes depend only on results.
        with open(os.path.join(REPO_ROOT, profile), "w") as f:
            json.dump(baseline, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"record_bench: wrote {profile}")


if __name__ == "__main__":
    main()
