#!/usr/bin/env python3
"""Records the bench trajectory baseline (BENCH_readpath.json).

Runs bench_readpath and bench_multicache from a build directory with
--json, validates each output against the besync.run_results.v1 schema,
and writes the combined, schema-stamped baseline at the repo root. The
bench JSON deliberately excludes timings (exp/runner.h), so the baseline
is a deterministic function of the bench configs — reruns on an unchanged
tree produce identical bytes, and any diff in a PR is a real behavioral
change in the recorded grids.

Usage:
  tools/record_bench.py [--build-dir build] [--out BENCH_readpath.json]
  tools/record_bench.py --check   # validate the committed baseline only
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RUN_RESULTS_SCHEMA = "besync.run_results.v1"
BASELINE_SCHEMA = "besync.bench_baseline.v1"
DEFAULT_OUT = "BENCH_readpath.json"

# One entry per recorded bench: (binary, extra args). Default scales keep
# the whole recording under a minute on one core.
BENCHES = {
    "bench_readpath": [],
    "bench_multicache": [],
}

# Fields every run_results row must carry (exp/runner.h).
REQUIRED_RESULT_KEYS = {
    "name", "scheduler", "policy", "metric", "num_caches",
    "cache_bandwidth_avg", "source_bandwidth_avg", "loss_rate",
    "workload_seed", "ok", "error", "total_weighted_divergence",
    "per_cache_weighted", "per_object_weighted", "per_object_unweighted",
    "total_replicas", "refreshes_sent", "refreshes_delivered",
    "feedback_sent", "polls_sent", "cache_utilization",
}
# Fields read-enabled rows additionally carry.
READ_RESULT_KEYS = {
    "read_rate", "capacity", "eviction", "reads_total", "read_hits",
    "read_misses", "hit_rate", "pull_requests_sent", "pulls_delivered",
    "cache_evictions", "read_staleness_mean", "read_staleness_p50",
    "read_staleness_p95", "read_staleness_p99", "read_miss_latency_mean",
    "pull_bandwidth_share",
}


def fail(message):
    print(f"record_bench: {message}", file=sys.stderr)
    sys.exit(1)


def validate_run_results(doc, context):
    if doc.get("schema") != RUN_RESULTS_SCHEMA:
        fail(f"{context}: schema is {doc.get('schema')!r}, "
             f"expected {RUN_RESULTS_SCHEMA!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail(f"{context}: empty or missing results array")
    for i, row in enumerate(results):
        missing = REQUIRED_RESULT_KEYS - row.keys()
        if missing:
            fail(f"{context}: result {i} missing keys {sorted(missing)}")
        if not row["ok"]:
            fail(f"{context}: result {i} ({row['name']!r}) failed: "
                 f"{row['error']!r}")
        extra_read = row.keys() & READ_RESULT_KEYS
        if extra_read and extra_read != READ_RESULT_KEYS:
            fail(f"{context}: result {i} carries a partial read-field set "
                 f"{sorted(extra_read)}")


def validate_baseline(doc, context):
    if doc.get("schema") != BASELINE_SCHEMA:
        fail(f"{context}: schema is {doc.get('schema')!r}, "
             f"expected {BASELINE_SCHEMA!r}")
    benches = doc.get("benches")
    if not isinstance(benches, dict) or not benches:
        fail(f"{context}: empty or missing benches object")
    for name, results_doc in benches.items():
        validate_run_results(results_doc, f"{context}: bench {name!r}")
    # bench_readpath is the point of this baseline: require its read rows.
    readpath = benches.get("bench_readpath")
    if readpath is None:
        fail(f"{context}: missing bench_readpath entry")
    if not any("hit_rate" in row for row in readpath["results"]):
        fail(f"{context}: bench_readpath recorded no read-enabled rows")


def run_bench(build_dir, name, extra_args):
    binary = os.path.join(build_dir, name)
    if not os.path.exists(binary):
        fail(f"{binary} not found — build the tree first "
             f"(cmake -B {build_dir} -S . && cmake --build {build_dir} -j)")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_path = handle.name
    try:
        command = [binary, f"--json={json_path}"] + extra_args
        result = subprocess.run(command, stdout=subprocess.DEVNULL,
                                stderr=subprocess.PIPE, text=True)
        if result.returncode != 0:
            fail(f"{name} exited {result.returncode}:\n{result.stderr}")
        with open(json_path) as f:
            doc = json.load(f)
    finally:
        os.unlink(json_path)
    validate_run_results(doc, name)
    return doc


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="build directory holding the bench binaries")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="baseline path, relative to the repo root")
    parser.add_argument("--check", action="store_true",
                        help="validate the committed baseline and exit "
                             "(no benches are run)")
    args = parser.parse_args()

    out_path = os.path.join(REPO_ROOT, args.out)
    if args.check:
        if not os.path.exists(out_path):
            fail(f"{out_path} does not exist; run tools/record_bench.py to "
                 f"record it")
        with open(out_path) as f:
            try:
                doc = json.load(f)
            except json.JSONDecodeError as error:
                fail(f"{out_path} is not valid JSON: {error}")
        validate_baseline(doc, args.out)
        print(f"record_bench: {args.out} OK "
              f"({sum(len(b['results']) for b in doc['benches'].values())} "
              f"recorded rows)")
        return

    build_dir = args.build_dir if os.path.isabs(args.build_dir) \
        else os.path.join(REPO_ROOT, args.build_dir)
    baseline = {
        "schema": BASELINE_SCHEMA,
        "benches": {name: run_bench(build_dir, name, extra)
                    for name, extra in sorted(BENCHES.items())},
    }
    validate_baseline(baseline, "recorded baseline")
    # Sorted keys + fixed separators: the bytes depend only on the results.
    with open(out_path, "w") as f:
        json.dump(baseline, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"record_bench: wrote {args.out}")


if __name__ == "__main__":
    main()
