// Divergence timeline around a fault window (observability layer demo).
//
// Runs two partitioned caches under the cooperative protocol, crashes cache
// 0 mid-run, and emits the per-tick divergence time series the obs layer
// sampled — total plus each cache — as CSV (argv[1], default stdout):
//
//   t,total,cache0,cache1
//
// The crash is visible as cache 0's divergence ramping while it is down,
// spiking through the resync burst, then rejoining cache 1's band; cache
// 1's curve barely moves, which is the recovery channel's whole point.
// Plot with any CSV tool, or load the same run's --trace_out (see
// bench_fault) in Perfetto for the event-level view.

#include <cstdio>
#include <string>

#include "exp/experiment.h"
#include "obs/timeseries.h"

using namespace besync;

int main(int argc, char** argv) {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kCooperative;
  config.workload.num_sources = 6;
  config.workload.objects_per_source = 12;
  config.workload.num_caches = 2;
  config.workload.interest_pattern = InterestPattern::kPartitionedBySource;
  config.workload.seed = 11;
  config.harness.warmup = 20.0;
  config.harness.measure = 200.0;
  config.harness.seed = 5;
  config.cache_bandwidth_avg = 6.0;
  config.source_bandwidth_avg = 3.0;

  // One crash/restart on cache 0, 25 s of downtime starting at t=80.
  config.workload.fault.cache_crashes = 1;
  config.workload.fault.crash_cache = 0;
  config.workload.fault.crash_duration = 25.0;
  config.workload.fault.window_start = 80.0;
  config.workload.fault.window_end = 0.0;  // fire exactly at window_start

  // Observability: sample every tick, keep every sample (the run is short).
  config.obs.enabled = true;
  config.obs.sample_interval = 1.0;
  config.obs.max_samples = 0;

  const auto result = RunExperiment(config);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::FILE* out = stdout;
  if (argc > 1) {
    out = std::fopen(argv[1], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
  }

  // Column layout (core/system.cc): values[0] is total_weighted_divergence,
  // then one cache_divergence_<c> per cache.
  const TimeSeries& series = result->obs->series;
  std::fprintf(out, "t,total,cache0,cache1\n");
  for (const TimeSeries::Row& row : series.rows()) {
    std::fprintf(out, "%g,%g,%g,%g\n", row.t, row.values[0], row.values[1],
                 row.values[2]);
  }
  if (out != stdout) {
    std::fclose(out);
    std::fprintf(stderr, "wrote %s (%d samples)\n", argv[1],
                 static_cast<int>(series.rows().size()));
  }
  return 0;
}
