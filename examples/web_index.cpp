// Web-index freshness (the paper's Section 7 running example): a search
// index caches documents from many content providers. The indexer weights
// pages by a PageRank-like importance (Zipf-distributed), but each provider
// has its own promotion priorities (e.g. a retailer pushing special
// offers). The cache dedicates a fraction Ψ of its crawl bandwidth to
// provider priorities — option (3), piggybacking, rewards providers whose
// content the index values.
//
// The example reports index-objective and provider-objective staleness for
// Ψ in {0, 0.2, 0.4} and contrasts the cooperative protocol against the
// cache-driven CGM crawler.

#include <cstdio>
#include <memory>

#include "baseline/cgm.h"
#include "core/competitive.h"
#include "core/harness.h"
#include "data/weight.h"
#include "data/workload.h"
#include "divergence/metric.h"

using namespace besync;

namespace {

Workload BuildWebCorpus(uint64_t seed) {
  constexpr int kProviders = 50;
  constexpr int kPagesPerProvider = 20;
  Workload corpus;
  corpus.num_sources = kProviders;
  corpus.objects_per_source = kPagesPerProvider;

  Rng rng(seed);
  for (int provider = 0; provider < kProviders; ++provider) {
    for (int page = 0; page < kPagesPerProvider; ++page) {
      ObjectSpec spec;
      spec.index = static_cast<ObjectIndex>(corpus.objects.size());
      spec.source_index = provider;
      // Page change rates: most pages are slow, a few churn (Zipf-ish mix).
      spec.lambda = 0.005 * static_cast<double>(rng.Zipf(100, 1.2));
      spec.process = std::make_unique<PoissonRandomWalkProcess>(spec.lambda);
      // Index importance: PageRank-like Zipf weights.
      spec.weight =
          MakeConstantWeight(static_cast<double>(rng.Zipf(50, 1.0)));
      // Provider priorities: each provider promotes a handful of pages
      // (e.g. special offers) the index does not particularly value.
      spec.source_weight = MakeConstantWeight(page < 3 ? 10.0 : 1.0);
      spec.max_divergence_rate = spec.lambda;
      spec.rng_seed = rng.NextUint64();
      corpus.objects.push_back(std::move(spec));
    }
  }
  return corpus;
}

}  // namespace

int main() {
  const double bandwidth = 60.0;  // index-side refresh budget, msgs/s
  HarnessConfig harness_config;
  harness_config.warmup = 200.0;
  harness_config.measure = 2000.0;
  auto metric = MakeMetric(MetricKind::kStaleness);

  std::printf("web index: 1000 pages from 50 providers, %g refreshes/s\n\n",
              bandwidth);
  std::printf("%-24s %-6s %-12s %-12s\n", "scheduler", "psi", "index_stale",
              "provider_stale");
  std::printf("-------------------------------------------------------------\n");

  // Cooperative with piggyback sharing at several psi values.
  for (double psi : {0.0, 0.2, 0.4}) {
    Workload corpus = BuildWebCorpus(7);
    Harness harness(&corpus, metric.get(), harness_config);
    GroundTruth provider_view(&corpus, metric.get(), /*use_source_weights=*/true);
    harness.AddGroundTruth(&provider_view);

    CompetitiveConfig config;
    config.base.cache_bandwidth_avg = bandwidth;
    config.psi = psi;
    config.option = ShareOption::kPiggyback;
    CompetitiveScheduler scheduler(config);
    if (Status status = harness.Run(&scheduler); !status.ok()) {
      std::fprintf(stderr, "run failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("%-24s %-6.2f %-12.4f %-12.4f\n", scheduler.name().c_str(), psi,
                harness.ground_truth().PerObjectWeightedAverage(),
                provider_view.PerObjectWeightedAverage());
  }

  // The conventional alternative: a cache-driven CGM crawler that polls.
  {
    Workload corpus = BuildWebCorpus(7);
    Harness harness(&corpus, metric.get(), harness_config);
    GroundTruth provider_view(&corpus, metric.get(), /*use_source_weights=*/true);
    harness.AddGroundTruth(&provider_view);

    CGMConfig config;
    config.network.cache_bandwidth_avg = bandwidth;
    config.variant = CGMVariant::kLastModified;
    CGMScheduler scheduler(config);
    if (Status status = harness.Run(&scheduler); !status.ok()) {
      std::fprintf(stderr, "run failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("%-24s %-6s %-12.4f %-12.4f\n", "cgm1 (cache-driven)", "-",
                harness.ground_truth().PerObjectWeightedAverage(),
                provider_view.PerObjectWeightedAverage());
  }

  std::printf(
      "\nRaising psi buys provider satisfaction for a small index-freshness\n"
      "cost; even at psi = 0.4 the cooperative index should stay fresher\n"
      "than the polling crawler (Figure 6's message).\n");
  return 0;
}
