// Quickstart: synchronize 100 random-walk objects from 5 sources into one
// cache over a bandwidth-constrained link, with the paper's cooperative
// threshold protocol, and compare against the idealized scheduler and a
// naive round-robin refresher.
//
//   ./quickstart
//
// Walks through the three core steps of the besync API:
//   1. describe a workload (objects, update processes, weights),
//   2. pick a divergence metric and a scheduler,
//   3. run and read the measured time-averaged divergence.

#include <cstdio>

#include "exp/experiment.h"

using namespace besync;

int main() {
  // 1. Workload: 5 sources x 20 objects, Poisson random-walk updates with
  //    rates drawn uniformly from (0, 1]; all equally weighted.
  ExperimentConfig config;
  config.workload.num_sources = 5;
  config.workload.objects_per_source = 20;
  config.workload.rate_lo = 0.0;
  config.workload.rate_hi = 1.0;
  config.workload.seed = 42;

  // 2. Objective: minimize time-averaged |source - cache| (value deviation).
  //    Resources: 20 messages/second of cache-side bandwidth — about 40% of
  //    the expected update volume, so refreshes must be prioritized.
  config.metric = MetricKind::kValueDeviation;
  config.cache_bandwidth_avg = 20.0;
  config.harness.warmup = 100.0;
  config.harness.measure = 1000.0;

  // 3. Run the three schedulers on the *same* workload (update streams are
  //    reproducible from per-object seeds).
  std::printf("scheduler           divergence/object   refreshes\n");
  std::printf("--------------------------------------------------\n");
  for (SchedulerKind kind : {SchedulerKind::kIdealCooperative,
                             SchedulerKind::kCooperative,
                             SchedulerKind::kRoundRobin}) {
    config.scheduler = kind;
    auto result = RunExperiment(config);
    if (!result.ok()) {
      std::fprintf(stderr, "run failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-18s  %-18.4f  %lld\n", result->scheduler_name.c_str(),
                result->per_object_weighted,
                static_cast<long long>(result->scheduler.refreshes_delivered));
  }
  std::printf(
      "\nThe cooperative protocol should sit close to the ideal oracle and\n"
      "well below round-robin. Try changing cache_bandwidth_avg.\n");
  return 0;
}
