// Stock-dashboard monitoring with divergence guarantees (Section 9): a
// trading dashboard caches quote values. Some instruments need *guaranteed*
// bounds on how wrong a displayed price can be (e.g. for circuit-breaker
// logic), which calls for the bound-minimizing priority
//   P = R_i (t - t_last)^2 / 2 * W
// driven by each instrument's maximum price-change rate R_i. Other
// consumers only care about average accuracy, where the paper's standard
// area priority is the right choice.
//
// The example runs both policies on the same quote feed and reports
// (a) average actual deviation and (b) the worst instantaneous refresh age
// scaled by R (the realized bound), showing the trade-off.

#include <cstdio>
#include <memory>

#include "core/harness.h"
#include "core/system.h"
#include "data/weight.h"
#include "data/workload.h"
#include "divergence/metric.h"
#include "priority/bound.h"

using namespace besync;

namespace {

Workload BuildQuoteFeed(uint64_t seed) {
  constexpr int kVenues = 10;
  constexpr int kSymbolsPerVenue = 30;
  Workload feed;
  feed.num_sources = kVenues;
  feed.objects_per_source = kSymbolsPerVenue;
  Rng rng(seed);
  for (int venue = 0; venue < kVenues; ++venue) {
    for (int s = 0; s < kSymbolsPerVenue; ++s) {
      ObjectSpec spec;
      spec.index = static_cast<ObjectIndex>(feed.objects.size());
      spec.source_index = venue;
      // Tick rates from sleepy small caps to hyperactive large caps.
      spec.lambda = rng.Uniform(0.02, 2.0);
      spec.process = std::make_unique<PoissonRandomWalkProcess>(
          spec.lambda, /*step=*/rng.Uniform(0.1, 1.0));
      spec.weight = MakeConstantWeight(1.0);
      // Known maximum drift rate: tick rate x tick size.
      spec.max_divergence_rate = spec.lambda;
      spec.rng_seed = rng.NextUint64();
      feed.objects.push_back(std::move(spec));
    }
  }
  return feed;
}

struct Outcome {
  double average_deviation;
  double worst_bound;  // max over objects of R_i * refresh age at run end
};

Outcome RunPolicy(PolicyKind policy) {
  Workload feed = BuildQuoteFeed(11);
  auto metric = MakeMetric(MetricKind::kValueDeviation);
  HarnessConfig harness_config;
  harness_config.warmup = 200.0;
  harness_config.measure = 1500.0;

  CooperativeConfig config;
  config.cache_bandwidth_avg = 60.0;
  config.policy = policy;
  CooperativeScheduler scheduler(config);

  Harness harness(&feed, metric.get(), harness_config);
  BESYNC_CHECK_OK(harness.Run(&scheduler));

  Outcome outcome;
  outcome.average_deviation = harness.ground_truth().PerObjectWeightedAverage();
  outcome.worst_bound = 0.0;
  const double end = harness.now();
  for (const ObjectRuntime& object : harness.objects()) {
    const double age = end - object.tracker().last_refresh_time();
    const double bound = object.spec->max_divergence_rate * age;
    if (bound > outcome.worst_bound) outcome.worst_bound = bound;
  }
  return outcome;
}

}  // namespace

int main() {
  std::printf("quote feed: 300 symbols from 10 venues, 60 msgs/s budget\n\n");
  std::printf("%-16s %-22s %-20s\n", "policy", "avg |price error|",
              "worst realized bound");
  std::printf("-----------------------------------------------------------\n");
  for (PolicyKind policy : {PolicyKind::kArea, PolicyKind::kBound}) {
    const Outcome outcome = RunPolicy(policy);
    std::printf("%-16s %-22.4f %-20.4f\n", PolicyKindToString(policy).c_str(),
                outcome.average_deviation, outcome.worst_bound);
  }
  std::printf(
      "\nThe bound policy caps every instrument's worst-case error (it\n"
      "refreshes by deadline, not by observed drift) at some cost in\n"
      "average accuracy; the area policy optimizes the average instead.\n");
  return 0;
}
