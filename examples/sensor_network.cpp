// Sensor-network monitoring (the paper's opening motivation): hundreds of
// battery-powered sensors report readings over a shared low-bandwidth
// wireless uplink; a monitoring cache wants the freshest possible picture.
//
// This example shows:
//  - heterogeneous update rates (slow temperature vs jittery vibration),
//  - fluctuating wireless bandwidth (mB > 0),
//  - sampling-based priority monitoring (cheap for battery-powered nodes:
//    no per-update triggers, Section 8.2.1),
//  - per-sensor-class importance weights.

#include <cstdio>
#include <memory>

#include "core/harness.h"
#include "core/system.h"
#include "data/weight.h"
#include "data/workload.h"
#include "divergence/metric.h"

using namespace besync;

int main() {
  // --- Build the sensor fleet by hand to show the ObjectSpec API. -------
  constexpr int kStations = 100;   // sensor stations (sources)
  constexpr int kPerStation = 4;   // temperature, humidity, wind, vibration
  Workload fleet;
  fleet.num_sources = kStations;
  fleet.objects_per_source = kPerStation;

  Rng rng(2024);
  struct SensorClass {
    const char* name;
    double rate;        // updates/second
    double importance;  // refresh weight
  };
  const SensorClass classes[kPerStation] = {
      {"temperature", 0.02, 1.0},
      {"humidity", 0.05, 1.0},
      {"wind", 0.2, 2.0},       // wind drives alerts: weight it up
      {"vibration", 1.0, 5.0},  // safety-critical and jittery
  };

  for (int station = 0; station < kStations; ++station) {
    for (int c = 0; c < kPerStation; ++c) {
      ObjectSpec spec;
      spec.index = static_cast<ObjectIndex>(fleet.objects.size());
      spec.source_index = station;
      spec.lambda = classes[c].rate;
      spec.process = std::make_unique<PoissonRandomWalkProcess>(classes[c].rate);
      spec.weight = MakeConstantWeight(classes[c].importance);
      spec.max_divergence_rate = classes[c].rate;
      spec.rng_seed = rng.NextUint64();
      fleet.objects.push_back(std::move(spec));
    }
  }

  // --- Protocol: cooperative thresholds, sampling monitors. -------------
  CooperativeConfig protocol;
  protocol.cache_bandwidth_avg = 40.0;    // shared wireless uplink, msgs/s
  protocol.source_bandwidth_avg = 1.0;    // per-station radio budget
  protocol.bandwidth_change_rate = 0.05;  // interference makes it fluctuate
  protocol.source.monitor = MonitorMode::kSampling;
  protocol.source.sampling_interval = 5.0;
  protocol.source.predictive_sampling = true;

  HarnessConfig harness_config;
  harness_config.warmup = 200.0;
  harness_config.measure = 2000.0;

  auto metric = MakeMetric(MetricKind::kValueDeviation);

  std::printf("monitoring %d stations (%d values) over a fluctuating %g msg/s uplink\n\n",
              kStations, kStations * kPerStation, protocol.cache_bandwidth_avg);

  CooperativeScheduler scheduler(protocol);
  auto result = RunScheduler(&fleet, metric.get(), harness_config, &scheduler);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("weighted divergence per value : %.4f\n", result->per_object_weighted);
  std::printf("refreshes delivered           : %lld\n",
              static_cast<long long>(result->scheduler.refreshes_delivered));
  std::printf("feedback messages             : %lld\n",
              static_cast<long long>(result->scheduler.feedback_sent));
  std::printf("uplink utilization            : %.1f%%\n",
              100.0 * result->scheduler.cache_utilization);
  std::printf("peak uplink queue             : %lld messages\n",
              static_cast<long long>(result->scheduler.max_cache_queue));
  std::printf("mean local threshold          : %.4f\n",
              result->scheduler.mean_threshold);
  std::printf(
      "\nNote: the stations never exchange state — coordination happens only\n"
      "through piggybacked thresholds and positive feedback (Section 5).\n");
  return 0;
}
